//! Vertical (length-wise) domain decomposition.
//!
//! Sample-Align-D decomposes the *sequence set*; this module decomposes
//! along *sequence length*, the strategy of the sibling domain-decomposition
//! paper: find columns that are certainly homologous before any alignment
//! exists (conserved k-mer anchors, chained colinearly across every
//! sequence), slice every sequence at the chained anchors into consistent
//! vertical blocks, align each block independently, then concatenate the
//! block alignments and polish a ±W-column window around each seam.
//!
//! The payoff is the DP bill: a whole-length progressive alignment fills
//! `O(L²)` cells per profile merge, while `B` anchored blocks fill
//! `O(B·(L/B)²) = O(L²/B)` — and the blocks are embarrassingly parallel,
//! so they ride the same self-scheduling worker pool as batch jobs.
//!
//! Wire-up: [`crate::SadConfig::with_vertical`] turns the mode on;
//! [`crate::Aligner::run`] then routes through `vertical_pipeline`,
//! which records [`crate::Phase::AnchorScan`] /
//! [`crate::Phase::BlockAlign`] / [`crate::Phase::Glue`] and degrades
//! gracefully to the ordinary whole-length pipeline when no reliable
//! anchors exist.

use crate::aligner::Backend;
use crate::config::SadConfig;
use crate::error::SadError;
use crate::pipeline::{Phase, PipelineCtx};
use crate::report::RunReport;
use align::anchor::{scan_anchors, Anchor, AnchorSpec};
use align::refine::leave_one_out_with;
use align::DpArena;
use bioseq::alphabet::GAP_CODE;
use bioseq::{Msa, Sequence, Work};
use serde::Serialize;
use std::time::Instant;

/// Knobs of the vertical decomposition, set via
/// [`crate::SadConfig::with_vertical`].
///
/// Construct with struct-update syntax over the default:
/// `VerticalConfig { max_block_len: 256, ..Default::default() }`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VerticalConfig {
    /// Anchor k-mer length: an anchor is an exact `min_anchor_len`-mer
    /// occurring exactly once in every sequence.
    pub min_anchor_len: usize,
    /// Minimum residue distance between consecutive chained anchors (in
    /// every sequence; clamped up to `min_anchor_len` so anchors never
    /// overlap).
    pub min_anchor_spacing: usize,
    /// Target block-length cap: the anchor chain is thinned to the fewest
    /// cut points that keep every block at most this long wherever an
    /// anchor makes that possible (a block with no anchor inside cannot
    /// be split and may exceed the cap).
    pub max_block_len: usize,
    /// Half-width of the seam-polish window: after concatenation, the
    /// `±seam_window` columns around each block boundary are re-refined.
    /// `0` skips seam refinement.
    pub seam_window: usize,
    /// Leave-one-out passes over each seam window.
    pub seam_passes: usize,
    /// Minimum positional-agreement confidence for an anchor, in
    /// `[0, 1]` (see [`align::anchor::AnchorSpec::min_confidence`]).
    pub min_confidence: f64,
}

impl Default for VerticalConfig {
    fn default() -> Self {
        VerticalConfig {
            min_anchor_len: 8,
            min_anchor_spacing: 32,
            max_block_len: 512,
            seam_window: 16,
            seam_passes: 1,
            min_confidence: 0.5,
        }
    }
}

impl VerticalConfig {
    /// The [`AnchorSpec`] these knobs translate to.
    pub(crate) fn anchor_spec(&self) -> AnchorSpec {
        AnchorSpec {
            k: self.min_anchor_len,
            min_spacing: self.min_anchor_spacing,
            min_confidence: self.min_confidence,
        }
    }

    /// Check the knobs' internal consistency (called from
    /// [`crate::SadConfig::validate`]).
    pub fn validate(&self) -> Result<(), SadError> {
        if self.min_anchor_len == 0 {
            return Err(SadError::InvalidVertical { what: "min_anchor_len" });
        }
        if self.max_block_len == 0 {
            return Err(SadError::InvalidVertical { what: "max_block_len" });
        }
        Ok(())
    }
}

/// Census of one vertical run, recorded in [`RunReport::vertical`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct VerticalReport {
    /// Chained anchors the cut survived thinning with (0 when the run
    /// degraded to a single whole-length block).
    pub anchors: usize,
    /// Aligned column count of each block, in length order. One entry —
    /// the final alignment width — when the run degraded to one block.
    pub block_cols: Vec<usize>,
    /// Seam windows that were actually refined during glue.
    pub seam_windows: usize,
}

impl VerticalReport {
    /// Number of vertical blocks the run aligned.
    pub fn blocks(&self) -> usize {
        self.block_cols.len()
    }

    /// Mean aligned block width in columns.
    pub fn mean_block_cols(&self) -> f64 {
        if self.block_cols.is_empty() {
            return 0.0;
        }
        self.block_cols.iter().sum::<usize>() as f64 / self.block_cols.len() as f64
    }
}

/// The anchor chain plus the consistent block cut it induces.
#[derive(Debug, Clone)]
pub struct VerticalPlan {
    /// Chained, thinned anchors (positions per input sequence), in
    /// position order.
    pub anchors: Vec<Anchor>,
    /// The blocks: `blocks[b]` holds one [`Sequence`] slice per input, in
    /// input order with ids preserved. Concatenating `blocks[..][i]`
    /// reproduces input `i` byte-for-byte. Always at least one block.
    pub blocks: Vec<Vec<Sequence>>,
}

/// Scan for anchors and cut every sequence at the chained, thinned anchor
/// positions. Cut points are anchor *start* positions, so each anchor's
/// k-mer opens its block; with no reliable anchors the plan is one
/// whole-length block. Scanning cost lands in `work.kmer_ops`.
pub fn plan_blocks(seqs: &[Sequence], vcfg: &VerticalConfig, work: &mut Work) -> VerticalPlan {
    let rows: Vec<&[u8]> = seqs.iter().map(Sequence::codes).collect();
    let chained = scan_anchors(&rows, &vcfg.anchor_spec(), work);
    let anchors = thin_anchors(chained, &rows, vcfg);

    let mut blocks = Vec::with_capacity(anchors.len() + 1);
    let mut starts = vec![0usize; seqs.len()];
    for anchor in &anchors {
        blocks.push(cut(seqs, &starts, &anchor.positions));
        starts.clone_from(&anchor.positions);
    }
    let ends: Vec<usize> = rows.iter().map(|r| r.len()).collect();
    blocks.push(cut(seqs, &starts, &ends));
    VerticalPlan { anchors, blocks }
}

/// One block: every sequence sliced `starts[i]..ends[i]`.
fn cut(seqs: &[Sequence], starts: &[usize], ends: &[usize]) -> Vec<Sequence> {
    seqs.iter()
        .zip(starts.iter().zip(ends))
        .map(|(s, (&lo, &hi))| Sequence::from_codes(s.id.clone(), s.codes()[lo..hi].to_vec()))
        .collect()
}

/// Thin the anchor chain to the fewest cut points that keep every block
/// within `max_block_len` wherever possible: an anchor is kept only when
/// skipping it would stretch the running block past the cap in some
/// sequence (measured to the next potential cut).
fn thin_anchors(anchors: Vec<Anchor>, rows: &[&[u8]], vcfg: &VerticalConfig) -> Vec<Anchor> {
    let seq_ends: Vec<usize> = rows.iter().map(|r| r.len()).collect();
    let mut kept: Vec<Anchor> = Vec::new();
    let mut starts = vec![0usize; rows.len()];
    for (j, anchor) in anchors.iter().enumerate() {
        let next_cut: &[usize] =
            if j + 1 < anchors.len() { &anchors[j + 1].positions } else { &seq_ends };
        let overflow = starts.iter().zip(next_cut).any(|(&lo, &hi)| hi - lo > vcfg.max_block_len);
        if overflow {
            starts.clone_from(&anchor.positions);
            kept.push(anchor.clone());
        }
    }
    kept
}

/// The vertical pipeline: anchor scan → parallel block alignment → glue
/// with seam refinement. Entered from [`crate::Aligner::run`] when
/// [`crate::SadConfig::vertical`] is set on a non-distributed backend;
/// `width` is the worker count (1 for sequential, `threads` for rayon).
pub(crate) fn vertical_pipeline(
    seqs: &[Sequence],
    cfg: &SadConfig,
    vcfg: &VerticalConfig,
    backend: &Backend,
    width: usize,
    ctx: &PipelineCtx,
    scratch: &mut DpArena,
) -> Result<RunReport, SadError> {
    let plan = ctx.phase(Phase::AnchorScan, || {
        let mut work = Work::ZERO;
        let plan = plan_blocks(seqs, vcfg, &mut work);
        for (i, anchor) in plan.anchors.iter().enumerate() {
            ctx.anchor_found(i, anchor.positions[0], anchor.confidence);
        }
        (plan, work)
    })?;

    if plan.blocks.len() < 2 {
        // Graceful degradation: no reliable anchors, so run the ordinary
        // whole-length pipeline — byte-identical output — and record the
        // attempted decomposition in the report.
        let mut report = match backend {
            Backend::Sequential => crate::sequential::sequential_pipeline(seqs, cfg, ctx, scratch)?,
            Backend::Rayon { threads } => {
                crate::rayon_impl::rayon_pipeline(seqs, *threads, cfg, ctx)?
            }
            Backend::Distributed(_) => {
                unreachable!("Aligner::run rejects vertical mode on the distributed backend")
            }
        };
        report.vertical = Some(VerticalReport {
            anchors: 0,
            block_cols: vec![report.msa.num_cols()],
            seam_windows: 0,
        });
        return Ok(report);
    }

    // Block alignment: every block is an independent job on the same
    // self-scheduling pool the batch runner uses, each worker owning its
    // own DpArena, each block running the full configured engine.
    let blocks = &plan.blocks;
    let aligned: Vec<(Msa, Work)> = ctx.phase(Phase::BlockAlign, || {
        let results: Vec<(Msa, Work)> = crate::batch::pool_map(blocks.len(), width, |b, arena| {
            let t0 = Instant::now();
            let engine = cfg.engine.build_with(cfg.band_policy, cfg.dp_kernel);
            let (msa, work) = engine.align_with_work_in(&blocks[b], arena);
            ctx.block_aligned(b, msa.num_rows(), msa.num_cols(), t0.elapsed().as_secs_f64());
            (msa, work)
        });
        let work = results.iter().map(|(_, w)| *w).sum();
        (results, work)
    })?;

    let block_cols: Vec<usize> = aligned.iter().map(|(m, _)| m.num_cols()).collect();
    let (msa, seam_windows) = ctx.phase(Phase::Glue, || {
        let mut work = Work::ZERO;
        let mut glued = concat_blocks(seqs, &aligned, &mut work);
        let seams = refine_seams(&mut glued, &block_cols, cfg, vcfg, scratch, &mut work);
        ((glued, seams), work)
    })?;

    let (phases, work) = ctx.drain();
    let extras = match backend {
        Backend::Sequential => crate::report::BackendExtras::Sequential,
        Backend::Rayon { threads } => crate::report::BackendExtras::Rayon { threads: *threads },
        Backend::Distributed(_) => unreachable!("vertical mode rejected on distributed"),
    };
    Ok(RunReport {
        msa,
        work,
        phases,
        bucket_sizes: vec![seqs.len()],
        ranks: width,
        samples_per_rank: cfg.samples_for(width),
        decomposition_depth: 0,
        kernel: cfg.dp_kernel.label(),
        vertical: Some(VerticalReport { anchors: plan.anchors.len(), block_cols, seam_windows }),
        trim: None,
        extras,
    })
}

/// Concatenate the block alignments row-wise. Every engine returns rows
/// in input order with input ids, so block `b`'s row `i` continues input
/// sequence `i`.
fn concat_blocks(seqs: &[Sequence], aligned: &[(Msa, Work)], work: &mut Work) -> Msa {
    let n = seqs.len();
    let total: usize = aligned.iter().map(|(m, _)| m.num_cols()).sum();
    let mut rows: Vec<Vec<u8>> = (0..n).map(|_| Vec::with_capacity(total)).collect();
    for (msa, _) in aligned {
        debug_assert_eq!(msa.num_rows(), n, "engine must keep every input row");
        for (r, row) in rows.iter_mut().enumerate() {
            debug_assert_eq!(msa.ids()[r], seqs[r].id, "engine must keep input row order");
            row.extend_from_slice(msa.row(r));
        }
    }
    work.col_ops += (total * n) as u64;
    Msa::from_rows(seqs.iter().map(|s| s.id.clone()).collect(), rows)
}

/// Polish a ±`seam_window` column window around each block boundary with
/// leave-one-out refinement, splicing the refined window back in place.
/// Returns how many windows were refined. Rows that are all-gap inside a
/// window sit out its refinement (a one-sided profile has nothing to
/// align) and are re-padded to the refined width.
fn refine_seams(
    glued: &mut Msa,
    block_cols: &[usize],
    cfg: &SadConfig,
    vcfg: &VerticalConfig,
    arena: &mut DpArena,
    work: &mut Work,
) -> usize {
    let w = vcfg.seam_window;
    if w == 0 || vcfg.seam_passes == 0 || block_cols.len() < 2 {
        return 0;
    }
    let mut refined = 0usize;
    // Seam positions from the original block widths, shifted as earlier
    // windows change width.
    let mut seam = 0isize;
    let mut delta = 0isize;
    for &cols in &block_cols[..block_cols.len() - 1] {
        seam += cols as isize;
        let s = (seam + delta).clamp(0, glued.num_cols() as isize) as usize;
        let lo = s.saturating_sub(w);
        let hi = (s + w).min(glued.num_cols());
        if hi - lo < 2 {
            continue;
        }
        if let Some(window) = refine_window(glued, lo, hi, cfg, vcfg, arena, work) {
            let new_w = window.first().map_or(0, Vec::len);
            delta += new_w as isize - (hi - lo) as isize;
            splice_window(glued, lo, hi, window, work);
            refined += 1;
        }
    }
    refined
}

/// Refine one `lo..hi` column window. Returns the refined window rows in
/// the alignment's row order (all the same length), or `None` when fewer
/// than two rows have residues in the window.
fn refine_window(
    glued: &Msa,
    lo: usize,
    hi: usize,
    cfg: &SadConfig,
    vcfg: &VerticalConfig,
    arena: &mut DpArena,
    work: &mut Work,
) -> Option<Vec<Vec<u8>>> {
    let n = glued.num_rows();
    let mut resident: Vec<usize> = Vec::with_capacity(n);
    for r in 0..n {
        if glued.row(r)[lo..hi].iter().any(|&c| c != GAP_CODE) {
            resident.push(r);
        }
    }
    if resident.len() < 2 {
        return None;
    }
    let sub = Msa::from_rows(
        resident.iter().map(|&r| glued.ids()[r].clone()).collect(),
        resident.iter().map(|&r| glued.row(r)[lo..hi].to_vec()).collect(),
    );
    let outcome = leave_one_out_with(
        &sub,
        &cfg.matrix,
        cfg.gaps,
        vcfg.seam_passes,
        cfg.band_policy,
        cfg.dp_kernel,
        arena,
    );
    *work += outcome.work;
    // leave_one_out may permute rows (ids are preserved); restore the
    // window's row order by consuming refined rows id-by-id.
    let new_w = outcome.msa.num_cols();
    let mut taken = vec![false; outcome.msa.num_rows()];
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(n);
    for r in 0..n {
        if resident.contains(&r) {
            let j = (0..outcome.msa.num_rows())
                .find(|&j| !taken[j] && outcome.msa.ids()[j] == glued.ids()[r])
                .expect("refinement preserves ids");
            taken[j] = true;
            rows.push(outcome.msa.row(j).to_vec());
        } else {
            rows.push(vec![GAP_CODE; new_w]);
        }
    }
    Some(rows)
}

/// Replace columns `lo..hi` of every row with the (possibly differently
/// sized) refined window rows.
fn splice_window(glued: &mut Msa, lo: usize, hi: usize, window: Vec<Vec<u8>>, work: &mut Work) {
    let ids = glued.ids().to_vec();
    let rows: Vec<Vec<u8>> = window
        .into_iter()
        .enumerate()
        .map(|(r, mid)| {
            let old = glued.row(r);
            let mut row = Vec::with_capacity(old.len() - (hi - lo) + mid.len());
            row.extend_from_slice(&old[..lo]);
            row.extend_from_slice(&mid);
            row.extend_from_slice(&old[hi..]);
            row
        })
        .collect();
    work.col_ops += rows.iter().map(Vec::len).sum::<usize>() as u64;
    *glued = Msa::from_rows(ids, rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aligner, Backend, Event, SadConfig};
    use rosegen::{Family, FamilyConfig};
    use std::sync::{Arc, Mutex};

    /// A family long and related enough to anchor reliably (low rose
    /// relatedness = few substitutions per site).
    fn anchored_family(n: usize, len: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: len,
            relatedness: 120.0,
            indel_rate: 0.01,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn vcfg_small() -> VerticalConfig {
        VerticalConfig {
            min_anchor_len: 6,
            min_anchor_spacing: 24,
            max_block_len: 150,
            seam_window: 8,
            ..Default::default()
        }
    }

    #[test]
    fn plan_is_lossless_and_consistent() {
        let seqs = anchored_family(6, 400, 11);
        let mut work = Work::ZERO;
        let plan = plan_blocks(&seqs, &vcfg_small(), &mut work);
        assert!(!plan.blocks.is_empty());
        assert!(work.kmer_ops > 0);
        for (i, seq) in seqs.iter().enumerate() {
            let mut glued: Vec<u8> = Vec::new();
            for block in &plan.blocks {
                assert_eq!(block[i].id, seq.id);
                glued.extend_from_slice(block[i].codes());
            }
            assert_eq!(glued, seq.codes(), "block cut must reproduce input {i}");
        }
        for block in &plan.blocks {
            assert!(block.iter().all(|s| !s.is_empty()), "blocks are never empty");
        }
    }

    #[test]
    fn thinning_respects_max_block_len_when_anchors_allow() {
        let seqs = anchored_family(4, 600, 12);
        let mut work = Work::ZERO;
        let tight = VerticalConfig { max_block_len: 120, ..vcfg_small() };
        let plan = plan_blocks(&seqs, &tight, &mut work);
        let loose = VerticalConfig { max_block_len: 10_000, ..vcfg_small() };
        let lazy = plan_blocks(&seqs, &loose, &mut work);
        assert!(plan.blocks.len() > lazy.blocks.len(), "tighter cap keeps more anchors");
        assert_eq!(lazy.blocks.len(), 1, "a huge cap needs no cuts at all");
    }

    #[test]
    fn vertical_run_matches_rows_and_reports_census() {
        let seqs = anchored_family(6, 400, 13);
        let cfg = SadConfig::default().with_vertical(vcfg_small());
        let events: Arc<Mutex<Vec<Event>>> = Arc::default();
        let sink = Arc::clone(&events);
        let report = Aligner::new(cfg)
            .observer(Arc::new(move |e: &Event| sink.lock().unwrap().push(e.clone())))
            .run(&seqs)
            .unwrap();
        report.msa.validate().unwrap();
        assert_eq!(report.msa.num_rows(), 6);
        assert_eq!(report.msa.ids()[0], seqs[0].id);
        // Rows ungap back to the inputs.
        for (i, seq) in seqs.iter().enumerate() {
            assert_eq!(report.msa.ungapped(i).codes(), seq.codes(), "row {i}");
        }
        let v = report.vertical.as_ref().expect("vertical census recorded");
        assert!(v.blocks() >= 2, "length-400 family with a 150 cap must split");
        assert_eq!(v.anchors + 1, v.blocks());
        assert!(report.phase(Phase::AnchorScan).is_some());
        assert!(report.phase(Phase::BlockAlign).is_some());
        assert!(report.phase(Phase::Glue).is_some());
        let evs = events.lock().unwrap();
        let anchors_seen = evs.iter().filter(|e| matches!(e, Event::AnchorFound { .. })).count();
        let blocks_seen = evs.iter().filter(|e| matches!(e, Event::BlockAligned { .. })).count();
        assert_eq!(anchors_seen, v.anchors);
        assert_eq!(blocks_seen, v.blocks());
        let table = report.phase_table();
        assert!(table.contains("decomposition:"), "{table}");
        assert!(table.contains("0-anchor-scan"), "{table}");
        assert!(table.contains("8-block-align"), "{table}");
    }

    #[test]
    fn sequential_and_rayon_vertical_are_byte_identical() {
        let seqs = anchored_family(8, 500, 14);
        let cfg = SadConfig::default().with_vertical(vcfg_small());
        let seq = Aligner::new(cfg.clone()).run(&seqs).unwrap();
        let ray = Aligner::new(cfg).backend(Backend::Rayon { threads: 4 }).run(&seqs).unwrap();
        assert_eq!(seq.msa, ray.msa, "vertical output is backend-independent");
        assert_eq!(seq.work, ray.work);
        assert_eq!(seq.vertical, ray.vertical);
        assert_eq!(ray.ranks, 4);
    }

    #[test]
    fn unanchorable_input_degrades_to_whole_length_parity() {
        // Deeply diverged sequences (high rose relatedness = many
        // substitutions per site): no shared unique k-mers, no anchors.
        let seqs = Family::generate(&FamilyConfig {
            n_seqs: 6,
            avg_len: 80,
            relatedness: 1500.0,
            seed: 15,
            ..Default::default()
        })
        .seqs;
        let plain = Aligner::new(SadConfig::default()).run(&seqs).unwrap();
        let vertical = Aligner::new(
            SadConfig::default()
                .with_vertical(VerticalConfig { min_anchor_len: 24, ..Default::default() }),
        )
        .run(&seqs)
        .unwrap();
        assert_eq!(vertical.msa, plain.msa, "zero anchors must mean byte parity");
        let v = vertical.vertical.as_ref().unwrap();
        assert_eq!((v.anchors, v.blocks()), (0, 1));
        assert!(vertical.phase(Phase::AnchorScan).is_some(), "scan is still recorded");
    }

    #[test]
    fn vertical_rejected_on_distributed() {
        use vcluster::{CostModel, VirtualCluster};
        let seqs = anchored_family(4, 100, 16);
        let cfg = SadConfig::default().with_vertical(VerticalConfig::default());
        let err = Aligner::new(cfg)
            .backend(Backend::Distributed(VirtualCluster::new(2, CostModel::beowulf_2008())))
            .run(&seqs);
        assert_eq!(err, Err(SadError::VerticalUnsupported { backend: "distributed" }));
    }

    #[test]
    fn glued_output_has_no_all_gap_columns() {
        let seqs = anchored_family(6, 450, 17);
        let cfg = SadConfig::default().with_vertical(vcfg_small());
        let report = Aligner::new(cfg).run(&seqs).unwrap();
        let msa = &report.msa;
        for c in 0..msa.num_cols() {
            assert!(
                (0..msa.num_rows()).any(|r| msa.row(r)[c] != GAP_CODE),
                "all-gap column {c} survived glue"
            );
        }
    }
}
