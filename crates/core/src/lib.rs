//! # sad-core — Sample-Align-D
//!
//! The paper's contribution: a SampleSort-inspired distributed multiple
//! sequence alignment system. The pipeline on `p` processors:
//!
//! 1. block-distribute the `N` sequences (`w = N/p` each);
//! 2. compute each sequence's **k-mer rank** locally and sort by it;
//! 3. pick `k` regular samples per processor and all-gather them —
//!    the `k·p` samples represent the whole set;
//! 4. re-rank every sequence against the global sample (*globalized
//!    rank*);
//! 5. redistribute with PSRS bucketing so similar sequences co-locate;
//! 6. align each bucket independently with any sequential MSA engine
//!    (MUSCLE in the paper, [`align::MuscleLite`] here);
//! 7. extract each bucket's **local ancestor** (consensus), align the
//!    ancestors at the root into a **global ancestor**, broadcast it;
//! 8. profile-align every bucket against the global ancestor (the
//!    constrained fine-tuning of Fig. 2) and **glue** the anchored buckets
//!    into one global alignment at the root.
//!
//! One entry point, three interchangeable backends: build an [`Aligner`]
//! and pick a [`Backend`] —
//!
//! * [`Backend::Distributed`] — the real message-passing protocol over
//!   [`vcluster`] (virtual Beowulf; deterministic virtual time);
//! * [`Backend::Rayon`] — a shared-memory equivalent using rayon;
//! * [`Backend::Sequential`] — the engine run directly (the speedup
//!   baseline).
//!
//! Every backend returns the same [`RunReport`]; failures are typed
//! [`SadError`]s instead of panics. All three backends record their run
//! through the one [`pipeline`] layer: typed [`Phase`] ids with real
//! wall-clock seconds per phase, live [`Event`]s to a registered
//! [`Observer`], and cooperative cancellation via [`CancelToken`] or a
//! deadline ([`SadError::Cancelled`] names the phase the run stopped at).
//!
//! Many families per process: [`Aligner::run_batch`] schedules an ordered
//! set of named [`BatchJob`]s across a backend-aware worker pool and
//! returns a [`BatchReport`] — per-job `Result`s (failures are isolated),
//! aggregate throughput, and `JobStarted`/`JobFinished` events on the
//! same observer surface.
//!
//! The pre-0.2 entry points (`run_distributed`, `run_rayon`,
//! `run_sequential`) — deprecated shims since 0.2 — are gone; see the
//! README migration table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aligner;
pub mod ancestor;
pub mod audit;
pub mod batch;
pub mod config;
pub mod decomp;
pub mod distributed;
pub mod error;
pub mod messages;
pub mod pipeline;
pub mod rank;
pub mod rayon_impl;
pub mod report;
pub mod sequential;

pub use align::{BandPolicy, TrimConfig};
pub use aligner::{Aligner, Backend};
pub use batch::{BatchJob, BatchReport, JobReport};
pub use config::SadConfig;
pub use decomp::{VerticalConfig, VerticalPlan, VerticalReport};
pub use error::SadError;
pub use pipeline::{CancelToken, Event, Observer, Phase};
pub use rank::{rank_experiment, RankExperiment};
pub use report::{BackendExtras, PhaseStat, RunReport, TrimReport};
