//! Genome-like sequence sampling: a phylogenetically diverse mixture of
//! families mimicking "randomly selected sequences from the Methanosarcina
//! acetivorans genome" (avg ORF length ≈ 316 aa, Galagan et al. 2002).

use crate::family::{Family, FamilyConfig};
use crate::rng::normal;
use bioseq::Sequence;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Parameters of a genome sample.
#[derive(Debug, Clone)]
pub struct GenomeConfig {
    /// Total number of sequences.
    pub n_seqs: usize,
    /// Number of distinct families the sample mixes (paralog clusters).
    pub n_families: usize,
    /// Mean sequence length (M. acetivorans ORFs average 316 aa).
    pub avg_len: usize,
    /// Log-scale length spread (ORF lengths are right-skewed).
    pub len_log_sd: f64,
    /// Within-family divergence — rose semantics, so **larger = more
    /// divergent** (the default is high: the paper's genome set is far
    /// from a tight family). See [`FamilyConfig::relatedness`].
    pub relatedness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            n_seqs: 2000,
            n_families: 40,
            avg_len: 316,
            len_log_sd: 0.30,
            relatedness: 1100.0,
            seed: 0,
        }
    }
}

/// A genome sample: the shuffled sequences plus the families they came
/// from (with their true alignments, for diagnostics).
#[derive(Debug, Clone)]
pub struct GenomeSample {
    /// The sequences in randomised order (as "randomly selected from the
    /// genome").
    pub seqs: Vec<Sequence>,
    /// The underlying families.
    pub families: Vec<Family>,
}

impl GenomeSample {
    /// Draw a genome sample.
    ///
    /// # Panics
    /// Panics if `n_seqs == 0` or `n_families == 0`.
    pub fn generate(cfg: &GenomeConfig) -> GenomeSample {
        assert!(cfg.n_seqs >= 1 && cfg.n_families >= 1);
        let n_families = cfg.n_families.min(cfg.n_seqs);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
        // Spread sequences over families as evenly as possible.
        let base = cfg.n_seqs / n_families;
        let extra = cfg.n_seqs % n_families;
        let mut families = Vec::with_capacity(n_families);
        let mut seqs: Vec<Sequence> = Vec::with_capacity(cfg.n_seqs);
        for f in 0..n_families {
            let size = base + usize::from(f < extra);
            if size == 0 {
                continue;
            }
            // Right-skewed family mean length around the genome average.
            let log_mean = (cfg.avg_len as f64).ln() - cfg.len_log_sd.powi(2) / 2.0;
            let fam_len = normal(&mut rng, log_mean, cfg.len_log_sd).exp().round();
            let fam_len = (fam_len as usize).clamp(40, cfg.avg_len * 4);
            let fam = Family::generate(&FamilyConfig {
                n_seqs: size,
                avg_len: fam_len,
                len_sd: fam_len as f64 * 0.08,
                relatedness: cfg.relatedness,
                seed: cfg.seed.wrapping_mul(1000003).wrapping_add(f as u64),
                id_prefix: format!("MA{f:03}_"),
                ..Default::default()
            });
            seqs.extend(fam.seqs.iter().cloned());
            families.push(fam);
        }
        // Random selection order, like pulling ORFs from a genome.
        seqs.shuffle(&mut rng);
        GenomeSample { seqs, families }
    }

    /// Mean sequence length of the sample.
    pub fn mean_len(&self) -> f64 {
        self.seqs.iter().map(|s| s.len() as f64).sum::<f64>() / self.seqs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_and_uniqueness() {
        let g = GenomeSample::generate(&GenomeConfig {
            n_seqs: 200,
            n_families: 8,
            ..Default::default()
        });
        assert_eq!(g.seqs.len(), 200);
        let ids: std::collections::HashSet<&str> = g.seqs.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids.len(), 200, "ids must be unique");
        assert_eq!(g.families.len(), 8);
    }

    #[test]
    fn mean_length_near_configured() {
        let g = GenomeSample::generate(&GenomeConfig {
            n_seqs: 400,
            n_families: 16,
            avg_len: 316,
            ..Default::default()
        });
        let mean = g.mean_len();
        assert!((mean - 316.0).abs() < 80.0, "mean length {mean} too far from 316");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenomeConfig { n_seqs: 100, n_families: 5, seed: 77, ..Default::default() };
        let a = GenomeSample::generate(&cfg);
        let b = GenomeSample::generate(&cfg);
        assert_eq!(a.seqs, b.seqs);
    }

    #[test]
    fn shuffled_not_grouped() {
        let g = GenomeSample::generate(&GenomeConfig {
            n_seqs: 300,
            n_families: 10,
            seed: 5,
            ..Default::default()
        });
        // The first 30 sequences should not all come from one family.
        let fams: std::collections::HashSet<String> =
            g.seqs[..30].iter().map(|s| s.id.split('_').next().unwrap().to_string()).collect();
        assert!(fams.len() > 3, "sample looks unshuffled: {fams:?}");
    }

    #[test]
    fn more_families_than_sequences_clamps() {
        let g = GenomeSample::generate(&GenomeConfig {
            n_seqs: 3,
            n_families: 10,
            ..Default::default()
        });
        assert_eq!(g.seqs.len(), 3);
        assert!(g.families.len() <= 3);
    }
}
