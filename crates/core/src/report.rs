//! The unified run report shared by all three backends.
//!
//! Every backend records its run through the same
//! [`crate::pipeline::PipelineCtx`], so [`RunReport`] carries what *every*
//! backend can produce — the alignment, total and per-phase work, real
//! wall-clock seconds per phase, the bucket/sample audit — and keeps
//! backend-specific extras (virtual makespan, per-rank traces) behind
//! [`BackendExtras`].

use crate::decomp::VerticalReport;
use crate::pipeline::Phase;
use bioseq::{Msa, Work};
use vcluster::RankTrace;

/// One pipeline phase's contribution to a run.
///
/// Marked `#[non_exhaustive]`: produced by the pipeline recorder, read
/// freely; future fields are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct PhaseStat {
    /// Which pipeline phase (typed; [`Phase::name`] gives the stable
    /// label, e.g. `"8-local-align"`).
    pub phase: Phase,
    /// Work performed in the phase, summed over ranks/threads.
    pub work: Work,
    /// Real wall-clock seconds the phase took (first rank in → last rank
    /// out on the decomposed backends). Populated for every phase of a
    /// completed run.
    pub seconds: Option<f64>,
    /// Maximum *virtual* seconds across ranks under the cluster's cost
    /// model — only the distributed backend models virtual time, so this
    /// is `None` elsewhere.
    pub virtual_seconds: Option<f64>,
}

impl PhaseStat {
    /// The phase's stable label (shorthand for `self.phase.name()`).
    pub fn name(&self) -> &'static str {
        self.phase.name()
    }
}

/// Census of the alignment-area trim stage ([`Phase::Trim`]): what the
/// MaxAlign-style optimizer dropped and what it bought. The invariant
/// `area_after >= area_before` always holds — dropping nothing is always
/// a candidate move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct TrimReport {
    /// Rows excluded from the alignment.
    pub rows_dropped: usize,
    /// Gap-free columns gained by the exclusions.
    pub cols_gained: usize,
    /// `rows × gap-free columns` before the trim.
    pub area_before: u64,
    /// `rows × gap-free columns` after the trim (never smaller).
    pub area_after: u64,
}

impl TrimReport {
    /// Net area gained by the trim.
    pub fn area_gain(&self) -> u64 {
        self.area_after - self.area_before
    }
}

/// What only one backend can report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BackendExtras {
    /// The engine ran directly on the whole set; nothing extra.
    Sequential,
    /// Shared-memory run on the rayon pool.
    Rayon {
        /// Logical buckets (threads) used.
        threads: usize,
    },
    /// Message-passing run on the virtual cluster.
    Distributed {
        /// Virtual wall-clock of the run (seconds).
        makespan: f64,
        /// Per-rank execution traces (phases, bytes, clocks).
        traces: Vec<RankTrace>,
    },
}

/// The outcome of one [`crate::Aligner::run`], whatever the backend.
///
/// Marked `#[non_exhaustive]`: construct via the aligner, read fields
/// freely; future fields are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RunReport {
    /// The assembled global alignment.
    pub msa: Msa,
    /// Total work performed across all phases and ranks.
    pub work: Work,
    /// Per-phase breakdown in pipeline order.
    pub phases: Vec<PhaseStat>,
    /// Post-redistribution bucket sizes, indexed by rank/bucket.
    /// The sequential backend reports one bucket holding everything.
    pub bucket_sizes: Vec<usize>,
    /// Ranks/buckets the pipeline decomposed over (1 for sequential).
    pub ranks: usize,
    /// Effective regular samples contributed per rank (`k` in the paper).
    pub samples_per_rank: usize,
    /// Maximum recursion depth of hierarchical sub-partitioning
    /// ([`Phase::SubPartition`]): 0 when every first-pass bucket already
    /// fit [`crate::SadConfig::max_bucket`] — or when no cap was set.
    pub decomposition_depth: usize,
    /// DP kernel selection the run was configured with
    /// ([`align::DpKernel::label`]: `"scalar"`, `"striped"`, or
    /// `"auto"`). The kernel never changes results or work accounting —
    /// this label records which fill implementation produced them.
    pub kernel: &'static str,
    /// Vertical (length-wise) decomposition census — anchors found, block
    /// widths, seam windows refined. `None` when the run aligned whole
    /// sequences ([`crate::SadConfig::vertical`] unset).
    pub vertical: Option<VerticalReport>,
    /// Alignment-area trim census — rows dropped, columns gained, area
    /// before/after. `None` when the run did not trim
    /// ([`crate::SadConfig::trim`] unset).
    pub trim: Option<TrimReport>,
    /// Backend-specific extras.
    pub extras: BackendExtras,
}

impl RunReport {
    /// Stable name of the backend that produced this report.
    pub fn backend_name(&self) -> &'static str {
        match self.extras {
            BackendExtras::Sequential => "sequential",
            BackendExtras::Rayon { .. } => "rayon",
            BackendExtras::Distributed { .. } => "distributed",
        }
    }

    /// Virtual wall-clock seconds (distributed backend only).
    pub fn makespan(&self) -> Option<f64> {
        match &self.extras {
            BackendExtras::Distributed { makespan, .. } => Some(*makespan),
            _ => None,
        }
    }

    /// Per-rank execution traces (distributed backend only).
    pub fn traces(&self) -> Option<&[RankTrace]> {
        match &self.extras {
            BackendExtras::Distributed { traces, .. } => Some(traces),
            _ => None,
        }
    }

    /// The recorded stat for one phase, if the run executed it.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// The typed phase sequence of the run, in execution order.
    pub fn phase_sequence(&self) -> Vec<Phase> {
        self.phases.iter().map(|p| p.phase).collect()
    }

    /// Load imbalance: largest bucket relative to the perfect share.
    pub fn load_imbalance(&self) -> f64 {
        let n: usize = self.bucket_sizes.iter().sum();
        let max = self.bucket_sizes.iter().copied().max().unwrap_or(0);
        if n == 0 {
            return 1.0;
        }
        max as f64 / (n as f64 / self.bucket_sizes.len() as f64)
    }

    /// The unified per-phase table every backend can print: phase name,
    /// work units, DP cells as `filled/full-equivalent` (what the banded
    /// kernel actually touched vs what an unbanded fill would have), real
    /// wall-clock seconds, and (when the backend models time) the maximum
    /// virtual seconds across ranks.
    pub fn phase_table(&self) -> String {
        use std::fmt::Write;
        let dp_pair = |w: &Work| {
            if w.dp_cells_full == 0 {
                "-".to_string()
            } else {
                format!("{}/{}", w.dp_cells, w.dp_cells_full)
            }
        };
        let secs =
            |s: Option<f64>| s.map_or_else(|| format!("{:>12}", "-"), |s| format!("{s:>12.4}"));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>21} {:>12} {:>12}",
            "phase", "work units", "dp cells (band/full)", "wall (s)", "virt max (s)"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>21} {} {}",
                p.name(),
                p.work.total_units(),
                dp_pair(&p.work),
                secs(p.seconds),
                secs(p.virtual_seconds)
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>21}",
            "total",
            self.work.total_units(),
            dp_pair(&self.work)
        );
        let _ = writeln!(out, "dp kernel: {}", self.kernel);
        if let Some(v) = &self.vertical {
            let _ = writeln!(
                out,
                "decomposition: {} blocks x mean len {:.1}, {} seam windows refined",
                v.blocks(),
                v.mean_block_cols(),
                v.seam_windows
            );
        }
        if let Some(t) = &self.trim {
            let _ = writeln!(
                out,
                "trim: dropped {} rows, gained {} gap-free columns, area {} -> {}",
                t.rows_dropped, t.cols_gained, t.area_before, t.area_after
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let msa = Msa::from_rows(vec!["a".into(), "b".into()], vec![vec![0, 1, 2], vec![0, 1, 3]]);
        RunReport {
            msa,
            work: Work::dp(10) + Work::kmer(5),
            phases: vec![
                PhaseStat {
                    phase: Phase::LocalKmerRank,
                    work: Work::kmer(5),
                    seconds: Some(0.125),
                    virtual_seconds: None,
                },
                PhaseStat {
                    phase: Phase::LocalAlign,
                    work: Work::dp(10),
                    seconds: Some(0.25),
                    virtual_seconds: Some(1.5),
                },
            ],
            bucket_sizes: vec![2, 0],
            ranks: 2,
            samples_per_rank: 1,
            decomposition_depth: 0,
            kernel: "auto",
            vertical: None,
            trim: None,
            extras: BackendExtras::Rayon { threads: 2 },
        }
    }

    #[test]
    fn phase_table_lists_every_phase_and_total() {
        let table = report().phase_table();
        assert!(table.contains("1-local-kmer-rank"));
        assert!(table.contains("8-local-align"));
        assert!(table.contains("total"));
        assert!(table.contains("0.2500"));
        assert!(table.contains("1.5000"), "virtual column renders:\n{table}");
        assert!(table.contains('-'), "phases without a virtual clock render a dash");
        // The DP column prints filled/full-equivalent cells.
        assert!(table.contains("dp cells (band/full)"));
        assert!(table.contains("wall (s)"));
        assert!(table.contains("10/10"), "Work::dp sets both counters:\n{table}");
        assert!(table.contains("dp kernel: auto"), "kernel label renders:\n{table}");
        assert!(!table.contains("decomposition:"), "no vertical line without a vertical run");
        assert!(!table.contains("trim:"), "no trim line without a trim run");
    }

    #[test]
    fn phase_table_prints_trim_census() {
        let mut r = report();
        r.trim =
            Some(TrimReport { rows_dropped: 2, cols_gained: 14, area_before: 96, area_after: 180 });
        let table = r.phase_table();
        assert!(
            table.contains("trim: dropped 2 rows, gained 14 gap-free columns, area 96 -> 180"),
            "{table}"
        );
        assert_eq!(r.trim.unwrap().area_gain(), 84);
    }

    #[test]
    fn phase_table_prints_decomposition_census() {
        let mut r = report();
        r.vertical =
            Some(VerticalReport { anchors: 3, block_cols: vec![100, 150, 110], seam_windows: 2 });
        let table = r.phase_table();
        assert!(table.contains("decomposition: 3 blocks x mean len 120.0"), "{table}");
        assert!(table.contains("2 seam windows refined"), "{table}");
    }

    #[test]
    fn phase_table_shows_banded_savings() {
        let mut r = report();
        r.phases[1].work = Work::dp_banded(4, 10);
        r.work = r.phases.iter().map(|p| p.work).sum();
        let table = r.phase_table();
        assert!(table.contains("4/10"), "{table}");
    }

    #[test]
    fn accessors_match_extras() {
        let r = report();
        assert_eq!(r.backend_name(), "rayon");
        assert_eq!(r.makespan(), None);
        assert!(r.traces().is_none());
    }

    #[test]
    fn typed_phase_lookup() {
        let r = report();
        assert_eq!(r.phase_sequence(), vec![Phase::LocalKmerRank, Phase::LocalAlign]);
        assert_eq!(r.phase(Phase::LocalAlign).unwrap().seconds, Some(0.25));
        assert_eq!(r.phase(Phase::Glue), None);
        assert_eq!(r.phases[0].name(), "1-local-kmer-rank");
    }

    #[test]
    fn load_imbalance_of_skewed_buckets() {
        let r = report();
        // 2 sequences in 2 buckets, all in one: max / (n/p) = 2 / 1 = 2.
        assert!((r.load_imbalance() - 2.0).abs() < 1e-12);
    }
}
