//! Offline stand-in for `rayon`: the parallel-iterator subset this
//! workspace uses, executed over `std::thread::scope` with one contiguous
//! chunk per available core.
//!
//! Results are order-preserving, so output is deterministic regardless of
//! the host's thread count — the property the alignment pipeline's
//! "deterministic despite parallelism" tests rely on. Unlike real rayon
//! there is no work-stealing pool: each adaptor (`map`, `for_each`)
//! evaluates eagerly in a fork-join over equal chunks, which is a good fit
//! for the regular, similarly-sized work items produced here (rows of a
//! distance matrix, buckets of sequences).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Everything call sites need in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// An eager "parallel iterator": the materialised items plus parallel
/// adaptors. Adaptors run a fork-join pass immediately.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, preserving input order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter { items: par_map(self.items, f) }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, f);
    }

    /// Collect the (already ordered) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Fork-join map over equal contiguous chunks; order-preserving.
fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// By-value conversion into a parallel iterator (`rayon`'s namesake trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.collect() }
    }
}

/// `par_iter()` on shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a shared reference).
    type Item: Send + 'a;
    /// Iterate items by reference, in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// `par_iter_mut()` on exclusive slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type (an exclusive reference).
    type Item: Send + 'a;
    /// Iterate items by mutable reference, in parallel.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let got: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        let want: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn for_each_mutates_every_item() {
        let mut v = vec![1u32; 257];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 10);
    }

    #[test]
    fn empty_and_single() {
        let got: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(got.is_empty());
        let one: Vec<u8> = vec![9u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        (0..8usize).into_par_iter().for_each(|i| {
            if i == 5 {
                panic!("boom");
            }
        });
    }
}
