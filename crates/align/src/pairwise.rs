//! Pairwise sequence alignment: Needleman–Wunsch/Gotoh global alignment
//! with affine gaps, and Smith–Waterman local alignment.

use bioseq::alphabet::GAP_CODE;
use bioseq::{GapPenalties, Msa, Sequence, SubstMatrix, Work};

/// The outcome of a pairwise alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PairAlignment {
    /// Gapped row for the first sequence.
    pub row_a: Vec<u8>,
    /// Gapped row for the second sequence.
    pub row_b: Vec<u8>,
    /// Alignment score in matrix units.
    pub score: i64,
    /// Work performed (DP cells filled).
    pub work: Work,
}

impl PairAlignment {
    /// Package the rows as a two-row [`Msa`].
    pub fn into_msa(self, id_a: impl Into<String>, id_b: impl Into<String>) -> Msa {
        Msa::from_rows(vec![id_a.into(), id_b.into()], vec![self.row_a, self.row_b])
    }

    /// Fractional identity over aligned residue pairs.
    pub fn identity(&self) -> f64 {
        bioseq::msa::row_identity(&self.row_a, &self.row_b)
    }
}

const NEG_INF: i64 = i64::MIN / 4;

/// Gotoh global alignment with affine gap penalties.
///
/// Terminal gaps are charged like internal ones, matching
/// [`bioseq::Msa::sp_score`]'s convention so that a pairwise alignment's
/// score equals its SP score.
pub fn global_align(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> PairAlignment {
    let (n, m) = (a.len(), b.len());
    let (open, extend) = (gaps.open as i64, gaps.extend as i64);
    let ac = a.codes();
    let bc = b.codes();

    // Three DP layers: M (match), X (gap in b / consuming a), Y (gap in a /
    // consuming b). Stored row-major with m+1 columns.
    let w = m + 1;
    let mut mm = vec![NEG_INF; (n + 1) * w];
    let mut xx = vec![NEG_INF; (n + 1) * w];
    let mut yy = vec![NEG_INF; (n + 1) * w];
    // Traceback: 2 bits per layer choice packed into a byte per cell/layer.
    // tb_m: which layer fed M's diagonal move; tb_x / tb_y: whether the gap
    // was opened (from best) or extended.
    let mut tb_m = vec![0u8; (n + 1) * w];
    let mut tb_x = vec![0u8; (n + 1) * w];
    let mut tb_y = vec![0u8; (n + 1) * w];

    mm[0] = 0;
    for i in 1..=n {
        let v = -(open + (i as i64 - 1) * extend);
        xx[i * w] = v;
        tb_x[i * w] = u8::from(i > 1); // extend after the first row
    }
    for j in 1..=m {
        let v = -(open + (j as i64 - 1) * extend);
        yy[j] = v;
        tb_y[j] = u8::from(j > 1);
    }

    for i in 1..=n {
        let arow = matrix.row(ac[i - 1]);
        for j in 1..=m {
            let idx = i * w + j;
            let diag = (i - 1) * w + (j - 1);
            let up = (i - 1) * w + j;
            let left = i * w + (j - 1);
            // M: consume both.
            let sub = arow[bc[j - 1] as usize] as i64;
            let (best_prev, from) = best3(mm[diag], xx[diag], yy[diag]);
            if best_prev > NEG_INF {
                mm[idx] = best_prev + sub;
                tb_m[idx] = from;
            }
            // X: consume from a (gap in b). Open from M/Y or extend X.
            let open_x = mm[up].max(yy[up]).saturating_sub(open);
            let ext_x = xx[up].saturating_sub(extend);
            if ext_x >= open_x {
                xx[idx] = ext_x;
                tb_x[idx] = 1;
            } else {
                xx[idx] = open_x;
                tb_x[idx] = 0;
            }
            // Y: consume from b (gap in a).
            let open_y = mm[left].max(xx[left]).saturating_sub(open);
            let ext_y = yy[left].saturating_sub(extend);
            if ext_y >= open_y {
                yy[idx] = ext_y;
                tb_y[idx] = 1;
            } else {
                yy[idx] = open_y;
                tb_y[idx] = 0;
            }
        }
    }

    let end = n * w + m;
    let (score, mut layer) = best3_tagged(mm[end], xx[end], yy[end]);
    // Traceback.
    let mut row_a = Vec::with_capacity(n + m);
    let mut row_b = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let idx = i * w + j;
        match layer {
            0 => {
                debug_assert!(i > 0 && j > 0);
                row_a.push(ac[i - 1]);
                row_b.push(bc[j - 1]);
                layer = tb_m[idx];
                i -= 1;
                j -= 1;
            }
            1 => {
                debug_assert!(i > 0);
                row_a.push(ac[i - 1]);
                row_b.push(GAP_CODE);
                let extended = tb_x[idx] == 1;
                i -= 1;
                if !extended {
                    // Re-derive which of M/Y opened this gap.
                    let prev = i * w + j;
                    layer = if mm[prev] >= yy[prev] { 0 } else { 2 };
                }
            }
            _ => {
                debug_assert!(j > 0);
                row_a.push(GAP_CODE);
                row_b.push(bc[j - 1]);
                let extended = tb_y[idx] == 1;
                j -= 1;
                if !extended {
                    let prev = i * w + j;
                    layer = if mm[prev] >= xx[prev] { 0 } else { 1 };
                }
            }
        }
    }
    row_a.reverse();
    row_b.reverse();
    PairAlignment { row_a, row_b, score, work: Work::dp((n as u64) * (m as u64) * 3) }
}

#[inline]
fn best3(m: i64, x: i64, y: i64) -> (i64, u8) {
    best3_tagged(m, x, y)
}

#[inline]
fn best3_tagged(m: i64, x: i64, y: i64) -> (i64, u8) {
    if m >= x && m >= y {
        (m, 0)
    } else if x >= y {
        (x, 1)
    } else {
        (y, 2)
    }
}

/// Result of a local alignment: the aligned segment plus its coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAlignment {
    /// Gapped row for the aligned segment of the first sequence.
    pub row_a: Vec<u8>,
    /// Gapped row for the aligned segment of the second sequence.
    pub row_b: Vec<u8>,
    /// Start offset (0-based residue index) of the segment in `a`.
    pub start_a: usize,
    /// Start offset of the segment in `b`.
    pub start_b: usize,
    /// Smith–Waterman score (≥ 0).
    pub score: i64,
    /// Work performed.
    pub work: Work,
}

/// Smith–Waterman local alignment with affine gaps.
pub fn local_align(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> LocalAlignment {
    let (n, m) = (a.len(), b.len());
    let (open, extend) = (gaps.open as i64, gaps.extend as i64);
    let ac = a.codes();
    let bc = b.codes();
    let w = m + 1;
    let mut mm = vec![0i64; (n + 1) * w];
    let mut xx = vec![NEG_INF; (n + 1) * w];
    let mut yy = vec![NEG_INF; (n + 1) * w];
    let (mut best, mut bi, mut bj) = (0i64, 0usize, 0usize);
    for i in 1..=n {
        let arow = matrix.row(ac[i - 1]);
        for j in 1..=m {
            let idx = i * w + j;
            let diag = (i - 1) * w + (j - 1);
            let up = (i - 1) * w + j;
            let left = i * w + (j - 1);
            let sub = arow[bc[j - 1] as usize] as i64;
            let prev = mm[diag].max(xx[diag]).max(yy[diag]).max(0);
            mm[idx] = prev + sub;
            xx[idx] = (mm[up].max(yy[up]) - open).max(xx[up] - extend);
            yy[idx] = (mm[left].max(xx[left]) - open).max(yy[left] - extend);
            if mm[idx] > best {
                best = mm[idx];
                bi = i;
                bj = j;
            }
        }
    }
    // Traceback from the best cell while scores stay positive, M layer
    // preferred (sufficient for the local alignment's use as a seed
    // finder in examples/tests).
    let mut row_a = Vec::new();
    let mut row_b = Vec::new();
    let (mut i, mut j) = (bi, bj);
    while i > 0 && j > 0 {
        let idx = i * w + j;
        if mm[idx] <= 0 {
            break;
        }
        let diag = (i - 1) * w + (j - 1);
        let sub = matrix.score(ac[i - 1], bc[j - 1]) as i64;
        let from_m = mm[diag].max(0) + sub == mm[idx];
        if from_m
            || (mm[diag].max(xx[diag]).max(yy[diag]).max(0) + sub == mm[idx]
                && mm[diag] >= xx[diag].max(yy[diag]))
        {
            row_a.push(ac[i - 1]);
            row_b.push(bc[j - 1]);
            i -= 1;
            j -= 1;
        } else if xx[diag] >= yy[diag] {
            // Gap in b: walk up through the X run.
            row_a.push(ac[i - 1]);
            row_b.push(bc[j - 1]);
            i -= 1;
            j -= 1;
        } else {
            row_a.push(ac[i - 1]);
            row_b.push(bc[j - 1]);
            i -= 1;
            j -= 1;
        }
    }
    row_a.reverse();
    row_b.reverse();
    LocalAlignment {
        row_a,
        row_b,
        start_a: i,
        start_b: j,
        score: best,
        work: Work::dp((n as u64) * (m as u64) * 3),
    }
}

/// Banded Gotoh global alignment: the DP is restricted to a diagonal band
/// of half-width `band`, the classic speed/optimality trade-off for
/// near-homologous sequences (MUSCLE's `-diags` spirit). With
/// `band ≥ max(n, m)` the result equals [`global_align`]; narrow bands can
/// miss alignments requiring large shifts.
///
/// # Panics
/// Panics if `band == 0`.
pub fn banded_global_align(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    band: usize,
) -> PairAlignment {
    assert!(band >= 1, "band must be at least 1");
    let (n, m) = (a.len(), b.len());
    // The band must at least cover the length difference or no path exists.
    let band = band.max(n.abs_diff(m) + 1);
    let (open, extend) = (gaps.open as i64, gaps.extend as i64);
    let ac = a.codes();
    let bc = b.codes();
    let w = m + 1;
    let inside = |i: usize, j: usize| -> bool {
        // Band around the rescaled diagonal j ≈ i·m/n.
        let centre = if n == 0 { 0i64 } else { (i as i64 * m as i64) / n as i64 };
        (j as i64 - centre).unsigned_abs() as usize <= band
    };
    let mut mm = vec![NEG_INF; (n + 1) * w];
    let mut xx = vec![NEG_INF; (n + 1) * w];
    let mut yy = vec![NEG_INF; (n + 1) * w];
    mm[0] = 0;
    for i in 1..=n {
        if inside(i, 0) {
            xx[i * w] = -(open + (i as i64 - 1) * extend);
        }
    }
    for (j, y) in yy.iter_mut().enumerate().take(m + 1).skip(1) {
        if inside(0, j) {
            *y = -(open + (j as i64 - 1) * extend);
        }
    }
    let mut cells = 0u64;
    for i in 1..=n {
        let arow = matrix.row(ac[i - 1]);
        for j in 1..=m {
            if !inside(i, j) {
                continue;
            }
            cells += 1;
            let idx = i * w + j;
            let diag = (i - 1) * w + (j - 1);
            let up = (i - 1) * w + j;
            let left = i * w + (j - 1);
            let sub = arow[bc[j - 1] as usize] as i64;
            let best_prev = mm[diag].max(xx[diag]).max(yy[diag]);
            if best_prev > NEG_INF {
                mm[idx] = best_prev + sub;
            }
            xx[idx] = (mm[up].max(yy[up]).saturating_sub(open)).max(xx[up].saturating_sub(extend));
            yy[idx] =
                (mm[left].max(xx[left]).saturating_sub(open)).max(yy[left].saturating_sub(extend));
        }
    }
    // Greedy traceback over the three layers (scores are exact within the
    // band, so following best predecessors reconstructs an optimal banded
    // path).
    let end = n * w + m;
    let (score, mut layer) = best3_tagged(mm[end], xx[end], yy[end]);
    let mut row_a = Vec::with_capacity(n + m);
    let mut row_b = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let idx = i * w + j;
        match layer {
            0 => {
                let diag = (i - 1) * w + (j - 1);
                row_a.push(ac[i - 1]);
                row_b.push(bc[j - 1]);
                let sub = matrix.score(ac[i - 1], bc[j - 1]) as i64;
                let target = mm[idx] - sub;
                layer = if mm[diag] == target {
                    0
                } else if xx[diag] == target {
                    1
                } else {
                    2
                };
                i -= 1;
                j -= 1;
            }
            1 => {
                let up = (i - 1) * w + j;
                row_a.push(ac[i - 1]);
                row_b.push(GAP_CODE);
                let via_extend = xx[up].saturating_sub(extend) == xx[idx];
                i -= 1;
                if !via_extend {
                    layer = if mm[up] >= yy[up] { 0 } else { 2 };
                }
            }
            _ => {
                let left = i * w + (j - 1);
                row_a.push(GAP_CODE);
                row_b.push(bc[j - 1]);
                let via_extend = yy[left].saturating_sub(extend) == yy[idx];
                j -= 1;
                if !via_extend {
                    layer = if mm[left] >= xx[left] { 0 } else { 1 };
                }
            }
        }
    }
    row_a.reverse();
    row_b.reverse();
    PairAlignment { row_a, row_b, score, work: Work::dp(cells * 3) }
}

/// Percent identity after a global alignment — the CLUSTALW initial
/// distance (`1 − identity`).
pub fn alignment_distance(
    a: &Sequence,
    b: &Sequence,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    work: &mut Work,
) -> f64 {
    let aln = global_align(a, b, matrix, gaps);
    *work += aln.work;
    1.0 - aln.identity()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(id: &str, t: &str) -> Sequence {
        Sequence::from_str(id, t).unwrap()
    }

    fn setup() -> (SubstMatrix, GapPenalties) {
        (SubstMatrix::blosum62(), GapPenalties::default())
    }

    #[test]
    fn identical_sequences_align_without_gaps() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWGKVL");
        let aln = global_align(&a, &a, &m, g);
        assert_eq!(aln.row_a, aln.row_b);
        assert!(!aln.row_a.contains(&GAP_CODE));
        let expected: i64 = a.codes().iter().map(|&c| m.score(c, c) as i64).sum();
        assert_eq!(aln.score, expected);
        assert_eq!(aln.identity(), 1.0);
    }

    #[test]
    fn rows_reconstruct_inputs() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAW");
        let b = seq("b", "MKAW");
        let aln = global_align(&a, &b, &m, g);
        let ung_a: Vec<u8> = aln.row_a.iter().copied().filter(|&c| c != GAP_CODE).collect();
        let ung_b: Vec<u8> = aln.row_b.iter().copied().filter(|&c| c != GAP_CODE).collect();
        assert_eq!(ung_a, a.codes());
        assert_eq!(ung_b, b.codes());
        assert_eq!(aln.row_a.len(), aln.row_b.len());
    }

    #[test]
    fn score_matches_sp_rescoring() {
        // The DP score must agree with re-scoring the emitted alignment.
        let (m, g) = setup();
        let cases = [
            ("MKVLAWGKVL", "MKILAWKVL"),
            ("AAAA", "WWWW"),
            ("MKVL", "M"),
            ("ACDEFGHIKLMNPQRSTVWY", "ACDEFGHIKLMNPQRSTVWY"),
            ("WLKMMKAW", "WKAW"),
        ];
        for (ta, tb) in cases {
            let a = seq("a", ta);
            let b = seq("b", tb);
            let aln = global_align(&a, &b, &m, g);
            let rescored = bioseq::msa::pairwise_row_score(&aln.row_a, &aln.row_b, &m, g);
            assert_eq!(aln.score, rescored, "case {ta} vs {tb}");
        }
    }

    #[test]
    fn symmetric_scores() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWGKVLMM");
        let b = seq("b", "MKILWGKIL");
        let s1 = global_align(&a, &b, &m, g).score;
        let s2 = global_align(&b, &a, &m, g).score;
        assert_eq!(s1, s2);
    }

    #[test]
    fn gap_is_preferred_when_cheaper() {
        let (m, _) = setup();
        // Cheap gaps: alignment should drop the unmatched region.
        let g = GapPenalties { open: 1, extend: 1 };
        let a = seq("a", "MKVLWWWWAW");
        let b = seq("b", "MKVLAW");
        let aln = global_align(&a, &b, &m, g);
        assert!(aln.row_b.contains(&GAP_CODE));
        assert!(aln.identity() > 0.9);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        let m = SubstMatrix::blosum62();
        let g = GapPenalties { open: 10, extend: 1 };
        let a = seq("a", "MKVVVVKW");
        let b = seq("b", "MKKW");
        let aln = global_align(&a, &b, &m, g);
        // Count gap runs in row_b; affine should produce exactly one.
        let mut runs = 0;
        let mut in_run = false;
        for &c in &aln.row_b {
            if c == GAP_CODE && !in_run {
                runs += 1;
                in_run = true;
            } else if c != GAP_CODE {
                in_run = false;
            }
        }
        assert_eq!(runs, 1, "rows: {:?} / {:?}", aln.row_a, aln.row_b);
    }

    #[test]
    fn single_residue_edge_cases() {
        let (m, g) = setup();
        let a = seq("a", "M");
        let b = seq("b", "M");
        let aln = global_align(&a, &b, &m, g);
        assert_eq!(aln.score, m.score(12, 12) as i64);
        let c = seq("c", "W");
        let aln2 = global_align(&a, &c, &m, g);
        assert_eq!(aln2.row_a.len(), aln2.row_b.len());
    }

    #[test]
    fn work_counts_cells() {
        let (m, g) = setup();
        let a = seq("a", "MKVL");
        let b = seq("b", "MKV");
        let aln = global_align(&a, &b, &m, g);
        assert_eq!(aln.work.dp_cells, 4 * 3 * 3);
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        let (m, g) = setup();
        let a = seq("a", "PPPPPMKVLAWPPPPP");
        let b = seq("b", "GGMKVLAWGG");
        let loc = local_align(&a, &b, &m, g);
        assert!(loc.score > 0);
        let seg: String = loc.row_a.iter().map(|&c| bioseq::alphabet::code_to_char(c)).collect();
        assert!(seg.contains("MKVLAW"), "segment {seg}");
        assert_eq!(loc.start_a, 5);
        assert_eq!(loc.start_b, 2);
    }

    #[test]
    fn local_score_nonnegative_even_for_unrelated() {
        let (m, g) = setup();
        let a = seq("a", "AAAA");
        let b = seq("b", "WWWW");
        let loc = local_align(&a, &b, &m, g);
        assert!(loc.score >= 0);
    }

    #[test]
    fn banded_with_wide_band_matches_full_dp() {
        let (m, g) = setup();
        let cases = [
            ("MKVLAWGKVL", "MKILAWKVL"),
            ("ACDEFGHIKLMNPQRSTVWY", "ACDEFGHIKLMNPQRSTVWY"),
            ("WLKMMKAW", "WKAW"),
            ("MKVL", "M"),
        ];
        for (ta, tb) in cases {
            let a = seq("a", ta);
            let b = seq("b", tb);
            let full = global_align(&a, &b, &m, g);
            let banded = banded_global_align(&a, &b, &m, g, 64);
            assert_eq!(banded.score, full.score, "{ta} vs {tb}");
            let rescored = bioseq::msa::pairwise_row_score(&banded.row_a, &banded.row_b, &m, g);
            assert_eq!(banded.score, rescored, "{ta} vs {tb} rescoring");
        }
    }

    #[test]
    fn banded_saves_cells() {
        let (m, g) = setup();
        let long = "MKVLAWGKVL".repeat(10);
        let a = seq("a", &long);
        let b = seq("b", &long);
        let full = global_align(&a, &b, &m, g);
        let banded = banded_global_align(&a, &b, &m, g, 5);
        assert!(banded.work.dp_cells < full.work.dp_cells / 3);
        // Identical sequences stay on the main diagonal: score preserved.
        assert_eq!(banded.score, full.score);
    }

    #[test]
    fn banded_rows_reconstruct_inputs() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWGKVLMMKK");
        let b = seq("b", "MKVLWGKVLMM");
        let aln = banded_global_align(&a, &b, &m, g, 4);
        let ung_a: Vec<u8> = aln.row_a.iter().copied().filter(|&c| c != GAP_CODE).collect();
        let ung_b: Vec<u8> = aln.row_b.iter().copied().filter(|&c| c != GAP_CODE).collect();
        assert_eq!(ung_a, a.codes());
        assert_eq!(ung_b, b.codes());
    }

    #[test]
    fn banded_score_never_exceeds_full() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAWWWWWWGKVL");
        let b = seq("b", "GKVLMKVLAW");
        let full = global_align(&a, &b, &m, g);
        for band in [1usize, 2, 4, 8, 32] {
            let banded = banded_global_align(&a, &b, &m, g, band);
            assert!(banded.score <= full.score, "band {band}");
        }
    }

    #[test]
    fn alignment_distance_zero_for_identical() {
        let (m, g) = setup();
        let a = seq("a", "MKVLAW");
        let mut w = Work::ZERO;
        let d = alignment_distance(&a, &a, &m, g, &mut w);
        assert_eq!(d, 0.0);
        assert!(w.dp_cells > 0);
    }
}
