//! The result cache: `(input digest, config fingerprint)` → aligned FASTA.
//!
//! The pipeline is deterministic, so two submissions with the same input
//! bytes under the same configuration are guaranteed the same output
//! bytes. The cache exploits that: a duplicate submission is answered at
//! accept time from memory — no queue slot, no worker, no DP cells. The
//! cache is rebuilt on restart from journal `Finished{digest}` entries
//! whose output files still verify, so a warm restart keeps its hits.

use std::collections::HashMap;
use std::sync::Mutex;

/// A cached alignment result.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Digest of the aligned FASTA text.
    pub digest: String,
    /// Number of aligned rows.
    pub rows: usize,
    /// The aligned FASTA text itself.
    pub fasta: String,
}

/// Thread-safe result cache.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<(String, String), CachedResult>>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Look up a result by input digest + config fingerprint.
    pub fn get(&self, input: &str, fingerprint: &str) -> Option<CachedResult> {
        self.map.lock().unwrap().get(&(input.to_string(), fingerprint.to_string())).cloned()
    }

    /// Record a completed result.
    pub fn insert(&self, input: &str, fingerprint: &str, result: CachedResult) {
        self.map.lock().unwrap().insert((input.to_string(), fingerprint.to_string()), result);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_both_key_halves() {
        let cache = ResultCache::new();
        let result =
            CachedResult { digest: "d".into(), rows: 2, fasta: ">a\nMK-L\n>b\nMKIL\n".into() };
        cache.insert("in1", "cfg1", result.clone());
        assert_eq!(cache.get("in1", "cfg1").unwrap().fasta, result.fasta);
        assert!(cache.get("in1", "cfg2").is_none(), "same input, other config: miss");
        assert!(cache.get("in2", "cfg1").is_none(), "other input, same config: miss");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn newer_insert_wins() {
        let cache = ResultCache::new();
        cache.insert(
            "in",
            "cfg",
            CachedResult { digest: "old".into(), rows: 1, fasta: "old".into() },
        );
        cache.insert(
            "in",
            "cfg",
            CachedResult { digest: "new".into(), rows: 1, fasta: "new".into() },
        );
        assert_eq!(cache.get("in", "cfg").unwrap().digest, "new");
        assert_eq!(cache.len(), 1);
    }
}
