//! In-process test fixture for the daemon: ephemeral ports, scripted
//! clients, kill-and-restart, and fault injection against the journal and
//! the output directory.
//!
//! Shipped as a normal (non-`cfg(test)`) module so the workspace-level
//! integration suite, the golden-transcript test, and the throughput
//! bench all drive the same fixture:
//!
//! ```no_run
//! use sad_serve::harness::ServeHarness;
//!
//! let mut h = ServeHarness::new("doc").workers(1).paused(true).start();
//! let mut client = h.client();
//! // … submit, kill, restart, assert on h.journal_entries() …
//! h.shutdown();
//! ```

use crate::client::Client;
use crate::journal::JournalEntry;
use crate::server::{RecoveryReport, ServeBackend, ServeConfig, Server, ServerHandle, ServerStats};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Builder + running-state wrapper around one server with stable journal
/// and output paths, so kill → restart resumes against the same disk
/// state (and fault injection can corrupt it in between).
pub struct ServeHarness {
    dir: PathBuf,
    cfg: ServeConfig,
    handle: Option<ServerHandle>,
}

impl ServeHarness {
    /// A fresh harness rooted in a unique temp directory. `tag` keeps
    /// concurrent tests' directories apart.
    pub fn new(tag: &str) -> ServeHarness {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("sad-serve-harness-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create harness dir");
        let cfg = ServeConfig::new(dir.join("journal.jsonl"), dir.join("out"));
        ServeHarness { dir, cfg, handle: None }
    }

    /// Worker threads (default 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Queue bound (default 32).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity;
        self
    }

    /// Execution backend (default sequential).
    pub fn backend(mut self, backend: ServeBackend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Start with the worker gate closed; release with
    /// [`ServeHarness::release_workers`].
    pub fn paused(mut self, paused: bool) -> Self {
        self.cfg.paused = paused;
        self
    }

    /// Pipeline configuration for every job.
    pub fn sad_config(mut self, sad: sad_core::SadConfig) -> Self {
        self.cfg.sad = sad;
        self
    }

    /// Result-cache byte budget (default 64 MiB). Small budgets let tests
    /// watch LRU eviction and bounded journal re-warm.
    pub fn cache_budget_bytes(mut self, bytes: usize) -> Self {
        self.cfg.cache_budget_bytes = bytes;
        self
    }

    /// Install a mid-job breakpoint (see [`crate::server::JobHold`]).
    /// Keep a clone to `engage`/`release` it from the test.
    pub fn hold(mut self, hold: crate::server::JobHold) -> Self {
        self.cfg.hold = Some(hold);
        self
    }

    /// Start the server (consumes the builder stage; callable again after
    /// [`ServeHarness::kill`] / [`ServeHarness::shutdown`] to restart
    /// against the same journal and output directory).
    pub fn start(mut self) -> ServeHarness {
        self.restart();
        self
    }

    /// (Re)start the server on the existing journal/output state. The
    /// port is ephemeral, so the address changes across restarts —
    /// re-fetch clients after calling this.
    pub fn restart(&mut self) {
        assert!(self.handle.is_none(), "server already running; kill or shutdown first");
        let handle = Server::start(self.cfg.clone()).expect("start server");
        self.handle = Some(handle);
    }

    /// The running server's handle.
    pub fn server(&self) -> &ServerHandle {
        self.handle.as_ref().expect("server not running")
    }

    /// Connect a scripted client to the running server.
    pub fn client(&self) -> Client {
        Client::connect_with_retry(self.server().addr(), Duration::from_secs(5))
            .expect("connect client")
    }

    /// Open the worker pause gate.
    pub fn release_workers(&self) {
        self.server().release_workers();
    }

    /// Abrupt stop (crash simulation): queued jobs dropped, interrupted
    /// jobs left un-journaled. Returns final counters.
    pub fn kill(&mut self) -> ServerStats {
        self.handle.take().expect("server not running").kill()
    }

    /// Graceful drain-and-stop. Returns final counters.
    pub fn shutdown(&mut self) -> ServerStats {
        self.handle.take().expect("server not running").shutdown()
    }

    /// Whether the server is currently running.
    pub fn is_running(&self) -> bool {
        self.handle.is_some()
    }

    /// What recovery decided at the most recent (re)start.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.server().recovery
    }

    /// The harness's journal path.
    pub fn journal_path(&self) -> PathBuf {
        self.cfg.journal.clone()
    }

    /// The harness's output directory.
    pub fn out_dir(&self) -> PathBuf {
        self.cfg.out_dir.clone()
    }

    /// A copy of the harness's server config (for starting a server
    /// manually against the same disk state, e.g. to assert start-up
    /// failures that [`ServeHarness::restart`] would panic on).
    pub fn config(&self) -> ServeConfig {
        self.cfg.clone()
    }

    /// Where `job`'s output file lands.
    pub fn output_path(&self, job: &str) -> PathBuf {
        crate::server::output_path(&self.cfg.out_dir, job)
    }

    /// Decode every well-formed journal line (tolerating a torn tail,
    /// exactly like server recovery).
    pub fn journal_entries(&self) -> Vec<JournalEntry> {
        crate::journal::replay(&self.cfg.journal).expect("replay journal").entries
    }

    // ── Fault injection ────────────────────────────────────────────────
    // All of these require the server to be stopped: they model damage
    // that happens while the process is down (or as it dies).

    /// Chop `bytes` off the end of the journal — models a crash mid-way
    /// through an appended line (torn write).
    pub fn truncate_journal(&self, bytes: u64) {
        self.assert_stopped("truncate_journal");
        let len = std::fs::metadata(&self.cfg.journal).expect("journal exists").len();
        let file =
            std::fs::OpenOptions::new().write(true).open(&self.cfg.journal).expect("open journal");
        file.set_len(len.saturating_sub(bytes)).expect("truncate journal");
    }

    /// Append a half-written line with no terminating newline (the other
    /// torn-write shape).
    pub fn append_torn_line(&self) {
        self.assert_stopped("append_torn_line");
        use std::io::Write;
        let mut file =
            std::fs::OpenOptions::new().append(true).open(&self.cfg.journal).expect("open journal");
        file.write_all(b"{\"entry\":\"finished\",\"job\":\"to").expect("append torn line");
    }

    /// Overwrite journal line `index` (0-based) with garbage of the same
    /// length — interior corruption, which replay must refuse.
    pub fn corrupt_journal_line(&self, index: usize) {
        self.assert_stopped("corrupt_journal_line");
        let text = std::fs::read_to_string(&self.cfg.journal).expect("read journal");
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert!(index < lines.len(), "journal has only {} lines", lines.len());
        lines[index] = "x".repeat(lines[index].len());
        let mut rebuilt = lines.join("\n");
        rebuilt.push('\n');
        std::fs::write(&self.cfg.journal, rebuilt).expect("write journal");
    }

    /// Delete `job`'s output file — recovery must re-run the job.
    pub fn remove_output(&self, job: &str) {
        self.assert_stopped("remove_output");
        std::fs::remove_file(self.output_path(job)).expect("remove output");
    }

    /// Flip bytes in `job`'s output file so it no longer matches the
    /// journaled digest — recovery must refuse it and re-run the job.
    pub fn corrupt_output(&self, job: &str) {
        self.assert_stopped("corrupt_output");
        let path = self.output_path(job);
        let mut text = std::fs::read_to_string(&path).expect("read output");
        text.push_str(">intruder\nXXXX\n");
        std::fs::write(&path, text).expect("write output");
    }

    fn assert_stopped(&self, what: &str) {
        assert!(!self.is_running(), "{what} requires a stopped server");
    }

    /// The harness's root temp directory (for ad-hoc inspection).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for ServeHarness {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.kill();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}
