//! The batch subsystem: many families per process.
//!
//! The paper positions Sample-Align-D as a *high-throughput* system —
//! Pyro-Align runs the same sampling pipeline over huge batches of read
//! sets, and the domain decomposition amortizes best when the machine
//! stays saturated across workloads. [`crate::Aligner::run_batch`] is that
//! many-jobs-per-process path:
//!
//! * an ordered set of named [`BatchJob`]s goes in;
//! * a backend-aware worker pool schedules them — a shared self-scheduling
//!   queue for [`Sequential`](crate::Backend::Sequential)/
//!   [`Rayon`](crate::Backend::Rayon) jobs (workers steal the next job the
//!   moment they go idle), a round-robin of per-worker virtual-cluster
//!   clones for [`Distributed`](crate::Backend::Distributed) jobs;
//! * each worker owns one [`DpArena`] of DP scratch, reused across all
//!   its jobs on the `Sequential` per-job backend (whose engine runs on
//!   the worker thread itself; the decomposed backends run their engines
//!   on internal worker threads with their own scratch);
//! * a [`BatchReport`] comes back: one `Result<RunReport, SadError>` per
//!   job (failures are isolated — a bad job never aborts its batch) plus
//!   aggregate throughput.
//!
//! ```
//! use sad_core::{Aligner, BatchJob, SadConfig};
//! # let fam = |seed| rosegen::Family::generate(&rosegen::FamilyConfig {
//! #     n_seqs: 6, avg_len: 40, relatedness: 600.0, seed, ..Default::default()
//! # }).seqs;
//! let jobs = vec![BatchJob::new("fam-a", fam(1)), BatchJob::new("fam-b", fam(2))];
//! let batch = Aligner::new(SadConfig::default()).run_batch(&jobs);
//! assert_eq!(batch.succeeded(), 2);
//! for job in &batch.jobs {
//!     let report = job.outcome.as_ref().expect("generated families align");
//!     assert_eq!(report.msa.num_rows(), 6);
//! }
//! println!("{}", batch.summary_table());
//! ```

use crate::aligner::{Aligner, Backend};
use crate::error::SadError;
use crate::pipeline::{CancelToken, Event};
use crate::report::RunReport;
use align::DpArena;
use bioseq::{Sequence, Work};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One named unit of batch work: a family to align.
#[derive(Debug, Clone, Default)]
pub struct BatchJob {
    /// Caller-chosen id, echoed in events, reports and tables (the CLI
    /// uses the input file stem).
    pub id: String,
    /// The family to align.
    pub seqs: Vec<Sequence>,
    /// Optional per-job cancellation: cancelling this token stops *this*
    /// job at its next phase boundary without touching the rest of the
    /// batch. Fused at run time with the aligner's batch-wide token.
    pub cancel: Option<CancelToken>,
}

impl BatchJob {
    /// A job with the given id and input family.
    pub fn new(id: impl Into<String>, seqs: Vec<Sequence>) -> Self {
        BatchJob { id: id.into(), seqs, cancel: None }
    }

    /// Attach a per-job cancellation token (keep a clone to trigger it).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// One job's slice of a [`BatchReport`].
///
/// Marked `#[non_exhaustive]`: produced by the batch runner, read freely.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct JobReport {
    /// The job's id, as submitted.
    pub id: String,
    /// Input size of the job.
    pub n_seqs: usize,
    /// Real wall-clock seconds the job took on its worker.
    pub seconds: f64,
    /// The run's outcome — per-job failures land here instead of
    /// aborting the batch.
    pub outcome: Result<RunReport, SadError>,
}

/// The outcome of one [`crate::Aligner::run_batch`]: per-job reports in
/// submission order plus batch-wide aggregates.
///
/// Marked `#[non_exhaustive]`: construct via the aligner, read freely.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchReport {
    /// Per-job outcomes, in submission order (whatever order workers
    /// finished them in).
    pub jobs: Vec<JobReport>,
    /// Real wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Workers the batch was scheduled over.
    pub workers: usize,
    /// Aggregate work over the jobs that succeeded. Summed componentwise
    /// (`Work`'s `Add`), so the banded/full DP counters stay in step —
    /// the audit invariant [`crate::audit::dp_accounting_ok`] is asserted
    /// on this aggregate.
    pub work: Work,
}

impl BatchReport {
    /// How many jobs produced an alignment.
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }

    /// How many jobs failed (typed per-job errors).
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.succeeded()
    }

    /// The report of the job with the given id, if it was in the batch.
    pub fn job(&self, id: &str) -> Option<&JobReport> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Batch throughput: jobs completed (successfully or not) per real
    /// wall-clock second.
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.jobs.len() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The per-job summary every batch surface prints: id, input size,
    /// alignment rows, work units, banded/full DP cells, per-job wall
    /// seconds and status, closed by an aggregate row with throughput.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write;
        let dp_pair = |w: &Work| {
            if w.dp_cells_full == 0 {
                "-".to_string()
            } else {
                format!("{}/{}", w.dp_cells, w.dp_cells_full)
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>6} {:>14} {:>21} {:>12}  status",
            "job", "seqs", "rows", "work units", "dp cells (band/full)", "wall (s)"
        );
        let mut rows_total = 0usize;
        for job in &self.jobs {
            match &job.outcome {
                Ok(report) => {
                    rows_total += report.msa.num_rows();
                    let _ = writeln!(
                        out,
                        "{:<24} {:>6} {:>6} {:>14} {:>21} {:>12.4}  ok",
                        job.id,
                        job.n_seqs,
                        report.msa.num_rows(),
                        report.work.total_units(),
                        dp_pair(&report.work),
                        job.seconds,
                    );
                }
                Err(err) => {
                    let _ = writeln!(
                        out,
                        "{:<24} {:>6} {:>6} {:>14} {:>21} {:>12}  error: {}",
                        job.id, job.n_seqs, "-", "-", "-", "-", err,
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>6} {:>14} {:>21} {:>12.4}  {} ok, {} failed, {:.2} jobs/s",
            "total",
            self.jobs.iter().map(|j| j.n_seqs).sum::<usize>(),
            rows_total,
            self.work.total_units(),
            dp_pair(&self.work),
            self.wall_seconds,
            self.succeeded(),
            self.failed(),
            self.jobs_per_second(),
        );
        out
    }
}

/// The host's available parallelism (1 when it cannot be queried).
fn default_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Run `n` indexed tasks on a self-scheduling worker pool — the shared
/// scheduling substrate of [`run_batch`] and of the vertical block
/// dispatch ([`crate::decomp`]). Idle workers steal the next unclaimed
/// index, each worker owns one long-lived [`DpArena`] of DP scratch, and
/// results come back in index order. `workers == 1` runs inline on the
/// caller's thread (no pool, deterministic event order).
pub(crate) fn pool_map<T, F>(n: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut DpArena) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        let mut arena = DpArena::new();
        return (0..n).map(|i| run(i, &mut arena)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (next, slots, run) = (&next, &slots, &run);
            scope.spawn(move || {
                let mut arena = DpArena::new();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock().expect("pool slot poisoned") = Some(run(i, &mut arena));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("pool slot poisoned").expect("every task was scheduled"))
        .collect()
}

/// One worker's execution of one job: emit the `JobStarted`/`JobFinished`
/// pair around the shared single-run path, fusing the batch-wide token
/// with the job's own so either can stop it. The aligner's deadline is
/// batch-wide (`deadline_at` is stamped once when the batch starts), so
/// each job runs under whatever share of the budget remains.
fn run_job(
    aligner: &Aligner,
    index: usize,
    job: &BatchJob,
    backend: &Backend,
    deadline_at: Option<Instant>,
    arena: &mut DpArena,
) -> JobReport {
    let cancel = match (aligner.cancel_ref(), &job.cancel) {
        (None, None) => None,
        (Some(batch), None) => Some(batch.clone()),
        (None, Some(own)) => Some(own.clone()),
        (Some(batch), Some(own)) => Some(CancelToken::fused([batch, own])),
    };
    // An exhausted budget leaves Duration::ZERO: the job still starts,
    // reports and finishes, but cancels at its first phase boundary.
    let budget = deadline_at.map(|d| d.saturating_duration_since(Instant::now()));
    if let Some(obs) = aligner.observer_ref() {
        obs.on_event(&Event::JobStarted { job: index, id: job.id.clone(), n_seqs: job.seqs.len() });
    }
    let t0 = Instant::now();
    // A job whose token is already poisoned must release its worker slot
    // immediately: skip pipeline setup entirely (no `RunStarted`/
    // `RunFinished`, no cluster spin-up) and report the same error the
    // first phase boundary would have produced.
    let outcome = if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
        Err(SadError::Cancelled { phase: first_phase(backend) })
    } else {
        aligner.run_inner(&job.seqs, backend, cancel, budget, arena)
    };
    let seconds = t0.elapsed().as_secs_f64();
    if let Some(obs) = aligner.observer_ref() {
        obs.on_event(&Event::JobFinished {
            job: index,
            id: job.id.clone(),
            seconds,
            ok: outcome.is_ok(),
        });
    }
    JobReport { id: job.id.clone(), n_seqs: job.seqs.len(), seconds, outcome }
}

/// The phase a backend's pipeline would check first — what
/// [`SadError::Cancelled`] reports when a run is cancelled before any
/// work happens. The sequential pipeline has no k-mer ranking stage, so
/// its first boundary is the local alignment itself.
fn first_phase(backend: &Backend) -> crate::pipeline::Phase {
    use crate::pipeline::Phase;
    match backend {
        Backend::Sequential => Phase::LocalAlign,
        Backend::Rayon { .. } | Backend::Distributed(_) => Phase::LocalKmerRank,
    }
}

/// The batch runner behind [`crate::Aligner::run_batch`] /
/// [`crate::Aligner::run_batch_with`].
pub(crate) fn run_batch(
    aligner: &Aligner,
    jobs: &[BatchJob],
    workers: Option<usize>,
) -> BatchReport {
    let t0 = Instant::now();
    let deadline_at = aligner.deadline_budget().map(|d| t0 + d);
    let workers = workers.unwrap_or_else(default_workers).clamp(1, jobs.len().max(1));

    let jobs_out: Vec<JobReport> = if workers == 1 {
        // Inline fast path: no pool, one arena, deterministic event order.
        let mut arena = DpArena::new();
        jobs.iter()
            .enumerate()
            .map(|(i, job)| {
                run_job(aligner, i, job, aligner.backend_ref(), deadline_at, &mut arena)
            })
            .collect()
    } else {
        match aligner.backend_ref() {
            Backend::Distributed(cluster) => {
                // Round-robin over per-worker cluster clones: worker `w`
                // owns one virtual cluster and runs jobs w, w+W, w+2W, …
                // serially on it, so every job sees a dedicated cluster
                // and virtual clocks stay deterministic. One slot per job
                // keeps the report in submission order whatever order
                // workers finish in.
                let slots: Vec<Mutex<Option<JobReport>>> =
                    jobs.iter().map(|_| Mutex::new(None)).collect();
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let cluster = cluster.clone();
                        let slots = &slots;
                        scope.spawn(move || {
                            let backend = Backend::Distributed(cluster);
                            let mut arena = DpArena::new();
                            let mut i = w;
                            while i < jobs.len() {
                                *slots[i].lock().expect("batch slot poisoned") = Some(run_job(
                                    aligner,
                                    i,
                                    &jobs[i],
                                    &backend,
                                    deadline_at,
                                    &mut arena,
                                ));
                                i += workers;
                            }
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|slot| {
                        slot.into_inner()
                            .expect("batch slot poisoned")
                            .expect("every job was scheduled")
                    })
                    .collect()
            }
            backend => {
                // Shared-queue self-scheduling: idle workers steal the
                // next unclaimed job, so a long job never strands its
                // worker's queue the way static chunking would.
                pool_map(jobs.len(), workers, |i, arena| {
                    run_job(aligner, i, &jobs[i], backend, deadline_at, arena)
                })
            }
        }
    };
    // Aggregate with Work::add so banded/full DP counters move in step;
    // the audit invariant catches any future double-counting regression.
    let work: Work = jobs_out.iter().filter_map(|j| j.outcome.as_ref().ok()).map(|r| r.work).sum();
    assert!(
        crate::audit::dp_accounting_ok(&work),
        "batch aggregate double-counts DP cells: {} filled vs {} full-equivalent",
        work.dp_cells,
        work.dp_cells_full
    );
    BatchReport { jobs: jobs_out, wall_seconds: t0.elapsed().as_secs_f64(), workers, work }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SadConfig;
    use crate::pipeline::Phase;
    use rosegen::{Family, FamilyConfig};
    use std::sync::Arc;
    use vcluster::{CostModel, VirtualCluster};

    fn family(n: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: 50,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn jobs(n_jobs: usize) -> Vec<BatchJob> {
        (0..n_jobs).map(|i| BatchJob::new(format!("fam-{i}"), family(6 + i, i as u64))).collect()
    }

    #[test]
    fn batch_preserves_submission_order_and_parity() {
        let jobs = jobs(4);
        let aligner = Aligner::new(SadConfig::default());
        let batch = aligner.run_batch_with(&jobs, 3);
        assert_eq!(batch.jobs.len(), 4);
        assert_eq!(batch.succeeded(), 4);
        assert_eq!(batch.failed(), 0);
        assert_eq!(batch.workers, 3);
        for (job, submitted) in batch.jobs.iter().zip(&jobs) {
            assert_eq!(job.id, submitted.id, "report order is submission order");
            assert_eq!(job.n_seqs, submitted.seqs.len());
            let single = aligner.run(&submitted.seqs).unwrap();
            let batched = job.outcome.as_ref().unwrap();
            assert_eq!(batched.msa, single.msa, "{}", job.id);
            assert_eq!(batched.work, single.work, "{}", job.id);
        }
        assert_eq!(
            batch.work,
            batch.jobs.iter().map(|j| j.outcome.as_ref().unwrap().work).sum::<Work>(),
            "aggregate equals the componentwise per-job sum"
        );
        assert!(batch.wall_seconds > 0.0);
        assert!(batch.jobs_per_second() > 0.0);
    }

    #[test]
    fn worker_count_is_clamped() {
        let jobs = jobs(2);
        let aligner = Aligner::new(SadConfig::default());
        assert_eq!(aligner.run_batch_with(&jobs, 0).workers, 1, "zero clamps to one");
        assert_eq!(aligner.run_batch_with(&jobs, 64).workers, 2, "capped by batch size");
        let empty = aligner.run_batch(&[]);
        assert_eq!(empty.jobs.len(), 0);
        assert_eq!(empty.succeeded(), 0);
        assert_eq!(empty.jobs_per_second(), 0.0);
    }

    #[test]
    fn failures_are_isolated_per_job() {
        let mut all = jobs(2);
        all.insert(1, BatchJob::new("solo", family(1, 9)));
        let batch = Aligner::new(SadConfig::default()).run_batch_with(&all, 2);
        assert_eq!(batch.succeeded(), 2);
        assert_eq!(batch.failed(), 1);
        assert_eq!(batch.job("solo").unwrap().outcome, Err(SadError::TooFewSequences { found: 1 }));
        assert!(batch.job("fam-0").unwrap().outcome.is_ok());
        assert!(batch.job("fam-1").unwrap().outcome.is_ok());
        assert!(batch.job("missing").is_none());
    }

    #[test]
    fn per_job_cancel_poisons_only_its_job() {
        let poison = CancelToken::new();
        poison.cancel();
        let all = vec![
            BatchJob::new("ok-a", family(6, 1)),
            BatchJob::new("poisoned", family(6, 2)).with_cancel(poison),
            BatchJob::new("ok-b", family(6, 3)),
        ];
        let batch = Aligner::new(SadConfig::default()).run_batch_with(&all, 2);
        assert_eq!(batch.succeeded(), 2);
        assert_eq!(
            batch.job("poisoned").unwrap().outcome,
            Err(SadError::Cancelled { phase: Phase::LocalAlign })
        );
    }

    #[test]
    fn poisoned_job_releases_its_slot_without_entering_the_pipeline() {
        // A pre-cancelled job must be reported `JobStarted`/`JobFinished`
        // but never reach pipeline setup: no `RunStarted` may be emitted
        // for it, and its wall-clock must be negligible — that's what
        // "releases the worker slot immediately" means.
        let poison = CancelToken::new();
        poison.cancel();
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let all = vec![
            BatchJob::new("poisoned", family(6, 2)).with_cancel(poison),
            BatchJob::new("ok", family(6, 1)),
        ];
        for backend in [
            Backend::Sequential,
            Backend::Rayon { threads: 2 },
            Backend::Distributed(VirtualCluster::new(2, CostModel::beowulf_2008())),
        ] {
            events.lock().unwrap().clear();
            let recorder = Arc::new({
                let sink = Arc::clone(&sink);
                move |e: &Event| sink.lock().unwrap().push(e.clone())
            });
            let batch = Aligner::new(SadConfig::default())
                .backend(backend.clone())
                .observer(recorder)
                .run_batch_with(&all, 1);
            let expected_phase = first_phase(&backend);
            assert_eq!(
                batch.job("poisoned").unwrap().outcome,
                Err(SadError::Cancelled { phase: expected_phase }),
                "{}",
                backend.name()
            );
            assert_eq!(batch.succeeded(), 1, "{}", backend.name());
            let log = events.lock().unwrap();
            // Workers run jobs in order: the poisoned job's started/
            // finished pair comes first, and the only RunStarted in the
            // stream belongs to the healthy job.
            let runs = log.iter().filter(|e| matches!(e, Event::RunStarted { .. })).count();
            assert_eq!(runs, 1, "{}: poisoned job must not enter the pipeline", backend.name());
            let poisoned_finish = log
                .iter()
                .find_map(|e| match e {
                    Event::JobFinished { id, ok, .. } if id == "poisoned" => Some(*ok),
                    _ => None,
                })
                .expect("poisoned job reports JobFinished");
            assert!(!poisoned_finish, "{}", backend.name());
        }
    }

    #[test]
    fn batch_wide_cancel_stops_every_job() {
        let token = CancelToken::new();
        token.cancel();
        let batch =
            Aligner::new(SadConfig::default()).cancel_token(token).run_batch_with(&jobs(3), 2);
        assert_eq!(batch.succeeded(), 0);
        for job in &batch.jobs {
            assert!(
                matches!(job.outcome, Err(SadError::Cancelled { .. })),
                "{}: {:?}",
                job.id,
                job.outcome
            );
        }
    }

    #[test]
    fn deadline_is_batch_wide_not_per_job() {
        use std::time::Duration;
        // A zero budget is exhausted before the first job starts: every
        // job must cancel at its first phase boundary — the budget spans
        // the batch, it does not restart per job.
        let batch =
            Aligner::new(SadConfig::default()).deadline(Duration::ZERO).run_batch_with(&jobs(3), 2);
        assert_eq!(batch.succeeded(), 0);
        for job in &batch.jobs {
            assert!(
                matches!(job.outcome, Err(SadError::Cancelled { .. })),
                "{}: {:?}",
                job.id,
                job.outcome
            );
        }
        // A generous budget lets the whole batch through.
        let ok = Aligner::new(SadConfig::default())
            .deadline(Duration::from_secs(3600))
            .run_batch_with(&jobs(2), 1);
        assert_eq!(ok.failed(), 0);
    }

    #[test]
    fn distributed_round_robin_matches_single_runs() {
        let jobs = jobs(5);
        let cluster = VirtualCluster::new(2, CostModel::beowulf_2008());
        let aligner = Aligner::new(SadConfig::default()).backend(Backend::Distributed(cluster));
        let batch = aligner.run_batch_with(&jobs, 2);
        assert_eq!(batch.succeeded(), 5);
        for (job, submitted) in batch.jobs.iter().zip(&jobs) {
            let single = aligner.run(&submitted.seqs).unwrap();
            let report = job.outcome.as_ref().unwrap();
            assert_eq!(report.msa, single.msa, "{}", job.id);
            assert_eq!(report.makespan(), single.makespan(), "{}", job.id);
        }
    }

    #[test]
    fn summary_table_lists_jobs_and_totals() {
        let mut all = jobs(2);
        all.push(BatchJob::new("solo", family(1, 8)));
        let batch = Aligner::new(SadConfig::default()).run_batch(&all);
        let table = batch.summary_table();
        assert!(table.contains("job"), "{table}");
        assert!(table.contains("fam-0"), "{table}");
        assert!(table.contains("fam-1"), "{table}");
        assert!(table.contains("error: need at least 2 sequences to align, got 1"), "{table}");
        assert!(table.contains("total"), "{table}");
        assert!(table.contains("2 ok, 1 failed"), "{table}");
        assert!(table.contains("jobs/s"), "{table}");
        assert!(table.contains("dp cells (band/full)"), "{table}");
    }

    #[test]
    fn invalid_config_fails_every_job_without_running() {
        let batch = Aligner::new(SadConfig::default().with_kmer_k(0)).run_batch(&jobs(2));
        assert_eq!(batch.failed(), 2);
        for job in &batch.jobs {
            assert_eq!(job.outcome, Err(SadError::ZeroKmerLen), "{}", job.id);
        }
    }

    #[test]
    fn observer_sees_paired_job_events() {
        let events: Arc<Mutex<Vec<Event>>> = Arc::default();
        let sink = Arc::clone(&events);
        let jobs = jobs(3);
        let batch = Aligner::new(SadConfig::default())
            .observer(Arc::new(move |e: &Event| sink.lock().unwrap().push(e.clone())))
            .run_batch_with(&jobs, 2);
        assert_eq!(batch.succeeded(), 3);
        let events = events.lock().unwrap();
        for (i, job) in jobs.iter().enumerate() {
            let started =
                events.iter().position(|e| matches!(e, Event::JobStarted { job, .. } if *job == i));
            let finished = events
                .iter()
                .position(|e| matches!(e, Event::JobFinished { job, ok: true, .. } if *job == i));
            let (s, f) = (started.expect("JobStarted"), finished.expect("JobFinished"));
            assert!(s < f, "job {i} finished before it started");
            assert!(
                matches!(&events[s], Event::JobStarted { id, n_seqs, .. }
                    if *id == job.id && *n_seqs == job.seqs.len()),
                "job {i} metadata"
            );
        }
    }
}
