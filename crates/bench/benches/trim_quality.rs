//! Quality and cost of the MaxAlign-style trim stage on gappy
//! alignments.
//!
//! Two workload shapes:
//!
//! * **fragments** — a clean rosegen family plus short fragment rows
//!   (residues only in a prefix window, gaps elsewhere), the shape
//!   read-merge seams produce. Trim must drop the fragments and the
//!   bench asserts the area **strictly** increases — the acceptance bar
//!   for the stage.
//! * **read_merge** — an actual Pyro-Align-style read alignment: reads
//!   simulated from a family, aligned on the rayon backend under the
//!   bucket cap, then trimmed. Here the bench only asserts the
//!   never-decrease invariant (whether fragments survive depends on the
//!   read mix).
//!
//! Writes `BENCH_trim.json` at the workspace root — area before/after,
//! rows dropped and median trim wall time per case — the committed
//! baseline future trim work has to beat.

use align::trim::{alignment_area, trim_msa, TrimConfig};
use bioseq::alphabet::GAP_CODE;
use bioseq::Msa;
use criterion::{criterion_group, criterion_main, Criterion};
use rosegen::{Family, FamilyConfig, ReadSet, ReadSimConfig};
use sad_core::{Aligner, Backend, SadConfig};

/// A clean (indel-free) family widened with `n_frags` fragment rows:
/// half carry residues only in the first quarter of the columns, half
/// only in the last quarter. Together they pin every column gapped, so
/// the starting area is tiny and trimming the fragments away is a
/// large, certain win — reachable greedily (each half is at most a pair,
/// which the pair-synergy lookahead sees).
fn fragment_fixture(n_full: usize, len: usize, n_frags: usize, seed: u64) -> Msa {
    let fam = Family::generate(&FamilyConfig {
        n_seqs: n_full,
        avg_len: len,
        relatedness: 200.0,
        indel_rate: 0.0,
        seed,
        ..Default::default()
    });
    let width = fam.reference.num_cols();
    let window = width / 4;
    let mut ids: Vec<String> = fam.reference.ids().to_vec();
    let mut rows: Vec<Vec<u8>> = fam.reference.rows().to_vec();
    for f in 0..n_frags {
        let mut row = rows[f % n_full].clone();
        let keep = if f < n_frags / 2 { 0..window } else { width - window..width };
        for (i, cell) in row.iter_mut().enumerate() {
            if !keep.contains(&i) {
                *cell = GAP_CODE;
            }
        }
        ids.push(format!("frag{f}"));
        rows.push(row);
    }
    Msa::from_rows(ids, rows)
}

/// A read-merge alignment: simulate reads from a family and align them
/// under the `sad reads` default cap on the rayon backend. The source is
/// short relative to the read length, so reads overlap heavily and
/// trimming the worst-placed reads can unlock columns.
fn read_merge_fixture(total_reads: usize, seed: u64) -> Msa {
    let fam = Family::generate(&FamilyConfig {
        n_seqs: 2,
        avg_len: 120,
        relatedness: 300.0,
        seed,
        ..Default::default()
    });
    let set = ReadSet::from_family(
        &fam,
        &ReadSimConfig { total_reads: Some(total_reads), seed, ..Default::default() },
    );
    Aligner::new(SadConfig::default().with_max_bucket(Some(128)))
        .backend(Backend::Rayon { threads: 4 })
        .run(&set.reads)
        .expect("valid read set")
        .msa
}

/// One measured (case, config) point.
struct Entry {
    case: String,
    mode: &'static str,
    rows: usize,
    width: usize,
    area_before: u64,
    area_after: u64,
    rows_dropped: usize,
    cols_gained: usize,
    seconds_median: f64,
}

impl Entry {
    fn json(&self) -> String {
        format!(
            "    {{\"case\": \"{}\", \"mode\": \"{}\", \"rows\": {}, \"width\": {}, \
             \"area_before\": {}, \"area_after\": {}, \"rows_dropped\": {}, \
             \"cols_gained\": {}, \"seconds_median\": {:.9}}}",
            self.case,
            self.mode,
            self.rows,
            self.width,
            self.area_before,
            self.area_after,
            self.rows_dropped,
            self.cols_gained,
            self.seconds_median
        )
    }
}

/// Median wall time of `runs` calls to `f`.
fn median_seconds(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn measure(case: &str, mode: &'static str, msa: &Msa, cfg: &TrimConfig) -> Entry {
    let outcome = trim_msa(msa, cfg);
    // The stage's core invariant, on every measured point.
    assert!(
        outcome.area_after >= outcome.area_before,
        "{case}/{mode}: trim decreased the area: {} -> {}",
        outcome.area_before,
        outcome.area_after
    );
    let (recount, _) = alignment_area(&outcome.msa);
    assert_eq!(recount, outcome.area_after, "{case}/{mode}: reported area disagrees with output");
    let seconds = median_seconds(5, || {
        std::hint::black_box(trim_msa(std::hint::black_box(msa), cfg));
    });
    Entry {
        case: case.to_string(),
        mode,
        rows: msa.num_rows(),
        width: msa.num_cols(),
        area_before: outcome.area_before,
        area_after: outcome.area_after,
        rows_dropped: outcome.rows_dropped(),
        cols_gained: outcome.cols_gained(),
        seconds_median: seconds,
    }
}

fn bench(c: &mut Criterion) {
    let mut entries: Vec<Entry> = Vec::new();

    // Fragment fixtures: the guaranteed-gain shape, greedy and
    // branch-and-bound.
    for (n_full, len, n_frags, seed) in [(8usize, 200usize, 2usize, 0x71u64), (16, 400, 4, 0x72)] {
        let msa = fragment_fixture(n_full, len, n_frags, seed);
        let case = format!("fragments_{}x{}+{}", n_full, len, n_frags);
        let greedy = measure(&case, "greedy", &msa, &TrimConfig::default());
        assert!(
            greedy.area_after > greedy.area_before,
            "{case}: trim must strictly grow the area on the fragment fixture: {} -> {}",
            greedy.area_before,
            greedy.area_after
        );
        assert!(
            greedy.rows_dropped >= n_frags,
            "{case}: expected at least the {n_frags} fragments dropped, got {}",
            greedy.rows_dropped
        );
        let bb = measure(
            &case,
            "branch_bound",
            &msa,
            &TrimConfig { branch_bound: true, ..Default::default() },
        );
        assert!(
            bb.area_after >= greedy.area_after,
            "{case}: branch-and-bound must never lose to greedy: {} vs {}",
            bb.area_after,
            greedy.area_after
        );
        entries.push(greedy);
        entries.push(bb);
    }

    // Read-merge fixtures: realistic gap structure from the large-N
    // pipeline.
    for (reads, seed) in [(200usize, 0x73u64), (600, 0x74)] {
        let msa = read_merge_fixture(reads, seed);
        let case = format!("read_merge_{reads}");
        entries.push(measure(&case, "greedy", &msa, &TrimConfig::default()));
    }

    for e in &entries {
        println!(
            "{}_{}: {} rows x {} cols, area {} -> {} ({} dropped, +{} cols), {:.6}s median",
            e.case,
            e.mode,
            e.rows,
            e.width,
            e.area_before,
            e.area_after,
            e.rows_dropped,
            e.cols_gained,
            e.seconds_median
        );
    }

    // Criterion tracking on the larger fragment fixture.
    let msa = fragment_fixture(16, 400, 4, 0x72);
    let cfg = TrimConfig::default();
    c.bench_function("trim_quality/greedy_16x400+4", |b| {
        b.iter(|| trim_msa(std::hint::black_box(&msa), &cfg))
    });

    let json = format!(
        "{{\n  \"bench\": \"trim_quality\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.iter().map(Entry::json).collect::<Vec<_>>().join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trim.json");
    std::fs::write(&path, json).expect("write BENCH_trim.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
