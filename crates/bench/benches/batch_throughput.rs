//! Throughput of the batch subsystem: a batch of 8 families on the
//! worker pool versus the same 8 families run serially, one
//! `Aligner::run` at a time.
//!
//! Beyond the criterion timings, the bench asserts the acceptance bar
//! directly on multi-core hosts: with at least two cores, the batch-of-8
//! median must be ≥ 1.5× faster than the 8 serial runs (8 jobs over W
//! workers leave plenty of headroom above 1.5× even at W = 2). On a
//! single-core host there is no parallelism to win from, so the bench
//! reports the ratio without asserting it.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_core::{Aligner, BatchJob, SadConfig};
use std::time::Instant;

fn jobs(n_jobs: usize, n_seqs: usize, seed: u64) -> Vec<BatchJob> {
    (0..n_jobs)
        .map(|i| {
            let seqs = rosegen::Family::generate(&rosegen::FamilyConfig {
                n_seqs,
                avg_len: 120,
                relatedness: 700.0,
                seed: seed + i as u64,
                id_prefix: format!("fam{i}-"),
                ..Default::default()
            })
            .seqs;
            BatchJob::new(format!("fam-{i}"), seqs)
        })
        .collect()
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let jobs = jobs(8, 16, 0xba7c);
    // Sequential per-job backend: batch throughput must come from the
    // worker pool scheduling jobs concurrently, not from intra-job
    // parallelism competing for the same cores.
    let aligner = Aligner::new(SadConfig::default());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = cores.min(jobs.len());

    let serial_8 = || {
        for job in &jobs {
            let report = aligner.run(&job.seqs).expect("bench families are valid");
            assert!(!report.work.is_zero());
        }
    };
    let batch_8 = || {
        let report = aligner.run_batch_with(&jobs, workers);
        assert_eq!(report.failed(), 0);
        report
    };

    // Warm-up, then the acceptance check on interleaved paired medians
    // (interleaving decorrelates the comparison from machine-load drift).
    serial_8();
    let warm = batch_8();
    let (mut serial_times, mut batch_times) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        let t0 = Instant::now();
        serial_8();
        serial_times.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        batch_8();
        batch_times.push(t0.elapsed().as_secs_f64());
    }
    let t_serial = median(serial_times);
    let t_batch = median(batch_times);
    let speedup = t_serial / t_batch;
    println!(
        "batch-of-8 (N=16, L≈120, {workers} workers on {cores} cores): \
         serial {t_serial:.4}s vs batch {t_batch:.4}s — {speedup:.2}x, {:.1} jobs/s",
        warm.jobs_per_second()
    );
    if cores >= 2 {
        assert!(
            speedup >= 1.5,
            "on a {cores}-core host a batch of 8 must beat 8 serial runs by ≥ 1.5x, \
             got {speedup:.2}x (serial {t_serial:.4}s, batch {t_batch:.4}s)"
        );
    } else {
        println!("single-core host: speedup assertion skipped (needs ≥ 2 cores)");
    }

    c.bench_function("batch/serial_8_jobs", |b| b.iter(serial_8));
    c.bench_function("batch/batch_8_jobs", |b| b.iter(batch_8));
}

criterion_group!(benches, bench);
criterion_main!(benches);
