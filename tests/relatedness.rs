//! Pins the *direction* of rosegen's `relatedness` knob: larger values
//! mean more divergent families (rose's convention, backwards from the
//! name). The anchor scanner sees divergence directly — conserved
//! colinear k-mers vanish as sequences drift apart — so anchor counts
//! must fall as `relatedness` grows.

use align::anchor::{scan_anchors, AnchorSpec};
use bioseq::Work;
use rosegen::{Family, FamilyConfig};

/// Total anchors found across a handful of seeds, so the comparison is
/// about the knob rather than one lucky draw.
fn anchors_at(relatedness: f64) -> usize {
    let spec = AnchorSpec { k: 6, min_spacing: 12, min_confidence: 0.3 };
    let mut total = 0;
    for seed in 0..4 {
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 6,
            avg_len: 200,
            relatedness,
            seed,
            ..Default::default()
        });
        let rows: Vec<&[u8]> = fam.seqs.iter().map(|s| s.codes()).collect();
        let mut work = Work::default();
        total += scan_anchors(&rows, &spec, &mut work).len();
    }
    total
}

#[test]
fn anchor_counts_decrease_as_relatedness_grows() {
    let close = anchors_at(120.0);
    let mid = anchors_at(800.0);
    let far = anchors_at(2000.0);
    assert!(close > 0, "a tight family should carry conserved anchors");
    assert!(
        close > mid && mid >= far,
        "relatedness is a divergence knob: {close} anchors at 120, {mid} at 800, {far} at 2000"
    );
}
