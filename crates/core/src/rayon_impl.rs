//! Shared-memory Sample-Align-D using rayon.
//!
//! Same pipeline as [`crate::distributed`], but buckets are aligned by a
//! rayon thread pool instead of cluster ranks — the backend a downstream
//! user on one big multicore machine would pick. Results are deterministic
//! (bucketing is identical; only scheduling differs).

use crate::ancestor::{anchor_to_ancestor, glue_anchored, glue_block_diagonal};
use crate::config::SadConfig;
use crate::error::SadError;
use crate::report::{BackendExtras, PhaseStat, RunReport};
use align::consensus::consensus_sequence;
use bioseq::kmer::{self, KmerProfile};
use bioseq::{Msa, Sequence, Work};
use rayon::prelude::*;

fn profile_of(seq: &Sequence, cfg: &SadConfig) -> KmerProfile {
    KmerProfile::build(seq, cfg.kmer_k, cfg.alphabet)
        .unwrap_or_else(|| KmerProfile::build(seq, 1, cfg.alphabet).expect("k=1 always works"))
}

/// Close a pipeline phase: account its work and record the stat.
fn phase(work: &mut Work, phases: &mut Vec<PhaseStat>, name: &str, w: Work) {
    *work += w;
    phases.push(PhaseStat { name: name.into(), work: w, seconds: None });
}

/// Run the pipeline with `p` logical buckets on the rayon pool.
///
/// Deprecated shim over the [`crate::Aligner`] builder. The name and
/// argument order match the 0.1 entry point, but the return type changed:
/// `RayonOutcome` is gone, and degenerate input yields a typed
/// [`SadError`] instead of the old behaviour (panic on empty input,
/// trivial one-row alignment for a single sequence). See the README
/// migration table.
#[deprecated(
    since = "0.2.0",
    note = "use `Aligner::new(cfg).backend(Backend::Rayon { threads: p }).run(seqs)`"
)]
pub fn run_rayon(seqs: &[Sequence], p: usize, cfg: &SadConfig) -> Result<RunReport, SadError> {
    crate::Aligner::new(cfg.clone()).backend(crate::Backend::Rayon { threads: p }).run(seqs)
}

/// The shared-memory pipeline. Input validation happens in
/// [`crate::Aligner::run`].
pub(crate) fn rayon_pipeline(seqs: &[Sequence], p: usize, cfg: &SadConfig) -> RunReport {
    debug_assert!(!seqs.is_empty(), "Aligner::run rejects empty input");
    debug_assert!(p >= 1, "Aligner::run rejects zero threads");
    let mut work = Work::ZERO;
    let mut phases: Vec<PhaseStat> = Vec::new();
    let n = seqs.len();
    let finish =
        |msa: Msa, work: Work, phases: Vec<PhaseStat>, bucket_sizes: Vec<usize>| RunReport {
            msa,
            work,
            phases,
            bucket_sizes,
            ranks: p,
            samples_per_rank: cfg.samples_for(p),
            extras: BackendExtras::Rayon { threads: p },
        };

    // Emulate the per-rank sampling: split into p blocks, rank locally,
    // sort each block by its local rank (the distributed step 2) and pick
    // regular samples. The locally sorted order also decides how rank ties
    // break during redistribution, so it must match the cluster backend.
    let chunk = n.div_ceil(p);
    let k = cfg.samples_for(p);
    let block_results: Vec<(Vec<usize>, Vec<usize>, Work, Work)> = (0..p)
        .into_par_iter()
        .map(|b| {
            let lo = (b * chunk).min(n);
            let hi = ((b + 1) * chunk).min(n);
            let mut w = Work::ZERO;
            if lo >= hi {
                return (Vec::new(), Vec::new(), w, Work::ZERO);
            }
            let idx: Vec<usize> = (lo..hi).collect();
            let profs: Vec<KmerProfile> = idx.iter().map(|&i| profile_of(&seqs[i], cfg)).collect();
            w.seq_bytes += idx.iter().map(|&i| seqs[i].len() as u64).sum::<u64>();
            let ranks: Vec<f64> = profs
                .iter()
                .map(|pr| kmer::kmer_rank(pr, &profs, cfg.rank_transform, &mut w))
                .collect();
            let mut order: Vec<usize> = (0..idx.len()).collect();
            order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]));
            let sorted_idx: Vec<usize> = order.iter().map(|&o| idx[o]).collect();
            let m = idx.len();
            let kk = k.min(m);
            let samples: Vec<usize> =
                (0..kk).map(|s| sorted_idx[(((s + 1) * m) / (kk + 1)).min(m - 1)]).collect();
            // Same n log n sort accounting as the distributed step 2.
            (sorted_idx, samples, w, psrs::sort_work(m))
        })
        .collect();
    let mut sample_indices: Vec<usize> = Vec::new();
    // Global order of entry into redistribution: blocks in rank order, each
    // block in its locally sorted order — exactly the distributed protocol.
    let mut entry_order: Vec<usize> = Vec::with_capacity(n);
    let mut rank_w = Work::ZERO;
    let mut sort_w = Work::ZERO;
    for (sorted_idx, s, w, sw) in block_results {
        entry_order.extend(sorted_idx);
        sample_indices.extend(s);
        rank_w += w;
        sort_w += sw;
    }
    phase(&mut work, &mut phases, "1-local-kmer-rank", rank_w);
    phase(&mut work, &mut phases, "2-local-sort", sort_w);
    let sample_profiles: Vec<KmerProfile> =
        sample_indices.iter().map(|&i| profile_of(&seqs[i], cfg)).collect();

    // Globalized ranks, in parallel over the entry order.
    let ranked: Vec<(usize, f64, Work)> = entry_order
        .into_par_iter()
        .map(|i| {
            let mut w = Work::ZERO;
            let pr = profile_of(&seqs[i], cfg);
            let r = kmer::kmer_rank(&pr, &sample_profiles, cfg.rank_transform, &mut w);
            (i, r, w)
        })
        .collect();
    let mut keyed: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut grank_w = Work::ZERO;
    for (i, r, w) in ranked {
        keyed.push((i, r));
        grank_w += w;
    }
    phase(&mut work, &mut phases, "5-globalized-rank", grank_w);

    // Sample-partition into p buckets by rank.
    let (buckets_idx, psrs_w) = psrs::shared::sample_partition_by_with_work(keyed, p, |&(_, r)| r);
    phase(&mut work, &mut phases, "6-redistribute", psrs_w);
    let bucket_sizes: Vec<usize> = buckets_idx.iter().map(Vec::len).collect();
    let buckets: Vec<Vec<Sequence>> =
        buckets_idx.iter().map(|b| b.iter().map(|&(i, _)| seqs[i].clone()).collect()).collect();

    // Align buckets in parallel.
    let aligned: Vec<Option<(Msa, Work)>> = buckets
        .into_par_iter()
        .map(|bucket| {
            if bucket.is_empty() {
                None
            } else {
                Some(cfg.engine.build_with_band(cfg.band_policy).align_with_work(&bucket))
            }
        })
        .collect();
    let mut local_msas: Vec<Msa> = Vec::new();
    let mut align_w = Work::ZERO;
    for entry in aligned.into_iter().flatten() {
        local_msas.push(entry.0);
        align_w += entry.1;
    }
    phase(&mut work, &mut phases, "8-local-align", align_w);
    assert!(!local_msas.is_empty());

    if p == 1 || local_msas.len() == 1 {
        let msa = local_msas.into_iter().next().expect("one bucket");
        return finish(msa, work, phases, bucket_sizes);
    }
    if !cfg.fine_tune {
        let mut glue_w = Work::ZERO;
        let msa = glue_block_diagonal(&local_msas, &mut glue_w);
        phase(&mut work, &mut phases, "12-glue", glue_w);
        return finish(msa, work, phases, bucket_sizes);
    }

    // Ancestors → global ancestor.
    let mut anc_w = Work::ZERO;
    let ancestors: Vec<Sequence> = local_msas
        .iter()
        .enumerate()
        .map(|(i, msa)| consensus_sequence(msa, format!("local-anc-{i}"), &mut anc_w))
        .collect();
    phase(&mut work, &mut phases, "9-local-ancestor", anc_w);
    let mut ga_w = Work::ZERO;
    let ga = if ancestors.len() == 1 {
        ancestors.into_iter().next().expect("one ancestor")
    } else {
        let (anc_msa, w) = cfg.engine.build_with_band(cfg.band_policy).align_with_work(&ancestors);
        ga_w += w;
        consensus_sequence(&anc_msa, "global-ancestor", &mut ga_w)
    };
    phase(&mut work, &mut phases, "10-global-ancestor", ga_w);

    // Fine-tune each bucket against the global ancestor, in parallel.
    let blocks: Vec<(crate::messages::AnchoredBlockMsg, Work)> = local_msas
        .par_iter()
        .map(|msa| {
            let mut w = Work::ZERO;
            let b = anchor_to_ancestor(msa, &ga, &cfg.matrix, cfg.gaps, cfg.band_policy, &mut w);
            (b, w)
        })
        .collect();
    let mut anchored = Vec::with_capacity(blocks.len());
    let mut tune_w = Work::ZERO;
    for (b, w) in blocks {
        anchored.push(b);
        tune_w += w;
    }
    phase(&mut work, &mut phases, "11-fine-tune", tune_w);
    let mut glue_w = Work::ZERO;
    let msa = glue_anchored(ga.len(), &anchored, &mut glue_w);
    phase(&mut work, &mut phases, "12-glue", glue_w);
    finish(msa, work, phases, bucket_sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aligner, Backend};
    use rosegen::{Family, FamilyConfig};
    use std::collections::HashMap;
    use vcluster::{CostModel, VirtualCluster};

    fn family(n: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: 60,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn run(seqs: &[Sequence], p: usize, cfg: &SadConfig) -> RunReport {
        Aligner::new(cfg.clone()).backend(Backend::Rayon { threads: p }).run(seqs).unwrap()
    }

    fn check_complete(result: &Msa, input: &[Sequence]) {
        result.validate().unwrap();
        assert_eq!(result.num_rows(), input.len());
        let by_id: HashMap<&str, &Sequence> = input.iter().map(|s| (s.id.as_str(), s)).collect();
        for r in 0..result.num_rows() {
            let want = by_id[result.ids()[r].as_str()];
            assert_eq!(&result.ungapped(r), want);
        }
    }

    #[test]
    fn end_to_end() {
        let seqs = family(24, 1);
        let report = run(&seqs, 4, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 24);
        assert!(!report.work.is_zero());
    }

    #[test]
    fn deterministic_despite_parallelism() {
        let seqs = family(20, 2);
        let a = run(&seqs, 4, &SadConfig::default());
        let b = run(&seqs, 4, &SadConfig::default());
        assert_eq!(a.msa, b.msa);
        assert_eq!(a.work, b.work);
        assert_eq!(a.phases, b.phases);
    }

    #[test]
    fn p1_is_single_bucket() {
        let seqs = family(8, 3);
        let report = run(&seqs, 1, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes, vec![8]);
    }

    #[test]
    fn agrees_with_distributed_on_bucketing() {
        // Same sampling rules ⇒ same bucket sizes as the message-passing
        // backend.
        let seqs = family(32, 4);
        let cfg = SadConfig::default();
        let ray = run(&seqs, 4, &cfg);
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let dist = Aligner::new(cfg).backend(Backend::Distributed(cluster)).run(&seqs).unwrap();
        assert_eq!(ray.bucket_sizes, dist.bucket_sizes);
        // And the same final alignment (pipelines are step-identical).
        assert_eq!(ray.msa, dist.msa);
    }

    #[test]
    fn fine_tune_off_is_block_diagonal() {
        let seqs = family(16, 5);
        let cfg = SadConfig::default().with_fine_tune(false);
        let report = run(&seqs, 4, &cfg);
        check_complete(&report.msa, &seqs);
    }

    #[test]
    fn work_is_attributed_to_phases() {
        let seqs = family(20, 6);
        let report = run(&seqs, 4, &SadConfig::default());
        assert_eq!(report.work, report.phases.iter().map(|p| p.work).sum::<Work>());
        let of = |name: &str| {
            report.phases.iter().find(|p| p.name == name).map(|p| p.work).unwrap_or(Work::ZERO)
        };
        assert!(of("1-local-kmer-rank").kmer_ops > 0);
        assert!(of("2-local-sort").sort_ops > 0);
        assert!(of("6-redistribute").sort_ops > 0);
        assert!(of("8-local-align").dp_cells > 0);
        // Shared-memory runs carry no virtual clock.
        assert!(report.phases.iter().all(|p| p.seconds.is_none()));
    }

    #[test]
    #[allow(deprecated)]
    fn shim_matches_aligner_and_rejects_degenerate_input() {
        let seqs = family(12, 7);
        let cfg = SadConfig::default();
        let via_shim = run_rayon(&seqs, 4, &cfg).unwrap();
        assert_eq!(via_shim.msa, run(&seqs, 4, &cfg).msa);
        let one = family(1, 6);
        assert_eq!(run_rayon(&one, 4, &cfg).unwrap_err(), SadError::TooFewSequences { found: 1 });
    }

    #[test]
    fn small_inputs_align() {
        let seqs3 = family(3, 7);
        let report = run(&seqs3, 8, &SadConfig::default());
        check_complete(&report.msa, &seqs3);
    }
}
