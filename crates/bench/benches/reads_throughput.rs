//! End-to-end throughput of the Pyro-Align-style large-N read mode:
//! simulate a read set, align it on the rayon backend with the
//! hierarchical `max_bucket` cap, and report reads aligned per second.
//!
//! Writes `BENCH_reads.json` at the workspace root — reads/sec per read
//! count — the committed baseline for large-N work. The 1k point also
//! runs under criterion for cycle-accurate tracking; 1k and 10k are
//! timed on every invocation, while the 50k point (minutes of wall
//! clock) only runs when `SAD_PAPER_SCALE=1`, so the default bench (and
//! CI) stays fast. Without the env var the committed JSON retains the
//! blessed 50k figure.

use criterion::{criterion_group, criterion_main, Criterion};
use rosegen::{Family, FamilyConfig, ReadSet, ReadSimConfig};
use sad_core::{Aligner, Backend, SadConfig};

/// The cap every bench run aligns under (the `sad reads` default).
const MAX_BUCKET: usize = 512;

fn simulate(total_reads: usize) -> ReadSet {
    let fam = Family::generate(&FamilyConfig {
        n_seqs: 4,
        avg_len: 400,
        relatedness: 800.0,
        seed: 1,
        ..Default::default()
    });
    ReadSet::from_family(
        &fam,
        &ReadSimConfig { total_reads: Some(total_reads), seed: 1, ..Default::default() },
    )
}

fn aligner_for(n: usize) -> Aligner {
    // Mirror `sad reads`: widen the first pass so blocks approach the cap
    // and the O(w²) local rank never sees a giant block.
    let threads = n.div_ceil(MAX_BUCKET).max(4);
    Aligner::new(SadConfig::default().with_max_bucket(Some(MAX_BUCKET)))
        .backend(Backend::Rayon { threads })
}

fn bench(c: &mut Criterion) {
    let paper_scale = std::env::var("SAD_PAPER_SCALE").is_ok_and(|v| v == "1");

    // Criterion tracking on the smallest size only; the larger points are
    // single timed runs below.
    let small = simulate(1_000);
    c.bench_function("reads_throughput/align_1k_cap512", |b| {
        b.iter(|| aligner_for(small.len()).run(std::hint::black_box(&small.reads)).unwrap())
    });

    let mut rows = Vec::new();
    let mut sizes = vec![1_000usize, 10_000];
    if paper_scale {
        sizes.push(50_000);
    } else {
        println!("skipping the 50k point (set SAD_PAPER_SCALE=1 to run it)");
    }
    for n in sizes {
        let set = simulate(n);
        // Large points cost minutes each: one timed run, not a median.
        let repeats = if n <= 1_000 { 3 } else { 1 };
        let mut times: Vec<f64> = (0..repeats)
            .map(|_| {
                let start = std::time::Instant::now();
                let report =
                    std::hint::black_box(aligner_for(n).run(&set.reads)).expect("valid read set");
                let elapsed = start.elapsed().as_secs_f64();
                let largest = report.bucket_sizes.iter().max().copied().unwrap_or(0);
                assert!(largest <= MAX_BUCKET, "bucket {largest} exceeds the cap {MAX_BUCKET}");
                elapsed
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let seconds = times[times.len() / 2];
        let reads_per_sec = n as f64 / seconds;
        println!("{n} reads: {seconds:.3}s ({reads_per_sec:.0} reads/sec)");
        rows.push(format!(
            "    {{\"reads\": {n}, \"max_bucket\": {MAX_BUCKET}, \
             \"seconds_median\": {seconds:.3}, \"reads_per_sec\": {reads_per_sec:.1}}}"
        ));
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_reads.json");
    if !paper_scale {
        // Carry the blessed 50k figure over so a fast run never erases it.
        if let Ok(prev) = std::fs::read_to_string(&path) {
            if let Some(line) = prev.lines().find(|l| l.contains("\"reads\": 50000")) {
                rows.push(line.trim_end().trim_end_matches(',').to_string());
            }
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"reads_throughput\",\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&path, json).expect("write BENCH_reads.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
