//! Determinism regression: the whole point of the virtual cluster is
//! bit-for-bit reproducible runs, so any nondeterminism creeping into the
//! pipeline (hash ordering, thread scheduling, float reduction order) must
//! fail loudly here.

use sample_align_d::prelude::*;
use std::collections::BTreeSet;

fn family(seed: u64) -> Family {
    Family::generate(&FamilyConfig {
        n_seqs: 28,
        avg_len: 64,
        relatedness: 700.0,
        seed,
        ..Default::default()
    })
}

fn on_cluster(p: usize, seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
    let cluster = VirtualCluster::new(p, CostModel::beowulf_2008());
    Aligner::new(cfg.clone()).backend(Backend::Distributed(cluster)).run(seqs).unwrap()
}

fn on_rayon(p: usize, seqs: &[Sequence], cfg: &SadConfig) -> RunReport {
    Aligner::new(cfg.clone()).backend(Backend::Rayon { threads: p }).run(seqs).unwrap()
}

/// The observable row content of an alignment: (id, ungapped residues).
fn row_set(msa: &bioseq::Msa) -> BTreeSet<(String, String)> {
    (0..msa.num_rows()).map(|r| (msa.ids()[r].clone(), msa.ungapped(r).to_letters())).collect()
}

#[test]
fn distributed_runs_are_byte_identical_for_same_seed_and_cluster() {
    let fam = family(41);
    let cfg = SadConfig::default();
    let a = on_cluster(4, &fam.seqs, &cfg);
    let b = on_cluster(4, &fam.seqs, &cfg);
    // Byte-identical serialised alignments, not merely equal structures.
    assert_eq!(
        fasta::write_alignment(&a.msa).into_bytes(),
        fasta::write_alignment(&b.msa).into_bytes(),
        "two runs with the same seed and cluster size must serialise identically"
    );
    assert_eq!(a.bucket_sizes, b.bucket_sizes);
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.work, b.work);
}

#[test]
fn regenerated_inputs_reproduce_the_same_alignment() {
    // Full regeneration from the seed (family + fresh cluster) — catches
    // hidden state leaking between runs rather than within one.
    let cfg = SadConfig::default();
    let a = on_cluster(4, &family(42).seqs, &cfg);
    let b = on_cluster(4, &family(42).seqs, &cfg);
    assert_eq!(fasta::write_alignment(&a.msa), fasta::write_alignment(&b.msa));
}

#[test]
fn rayon_backend_matches_distributed_exactly() {
    // The shared-memory backend is step-identical to the message-passing
    // one, so it must produce the same bytes — not just the same rows.
    let fam = family(43);
    let cfg = SadConfig::default();
    let dist = on_cluster(4, &fam.seqs, &cfg);
    let ray = on_rayon(4, &fam.seqs, &cfg);
    assert_eq!(fasta::write_alignment(&dist.msa), fasta::write_alignment(&ray.msa));
    assert_eq!(dist.bucket_sizes, ray.bucket_sizes);
}

#[test]
fn all_three_backends_cover_the_same_row_set() {
    // The sequential backend aligns the whole set at once, so columns
    // differ, but the set of (id, ungapped sequence) rows must agree with
    // the decomposed backends — no sequence lost, duplicated or mutated.
    let fam = family(44);
    let cfg = SadConfig::default();
    let dist = on_cluster(4, &fam.seqs, &cfg);
    let ray = on_rayon(4, &fam.seqs, &cfg);
    let seq = Aligner::new(cfg).backend(Backend::Sequential).run(&fam.seqs).unwrap();
    let want = row_set(&dist.msa);
    assert_eq!(want.len(), fam.seqs.len());
    assert_eq!(row_set(&ray.msa), want, "rayon row set diverged");
    assert_eq!(row_set(&seq.msa), want, "sequential row set diverged");
}

#[test]
fn backends_agree_even_under_globalized_rank_ties() {
    // Regression: these families produce exact ties in the globalized
    // k-mer rank (distinct sequences, equal log(0.1 + D)). Tie order used
    // to differ between the backends — distributed broke ties by the
    // locally sorted (centralized-rank) order, rayon by original index —
    // yielding row-permuted alignments from `sad align --backend rayon`.
    for seed in [1u64, 9] {
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 12,
            avg_len: 50,
            relatedness: 800.0,
            seed,
            ..Default::default()
        });
        let cfg = SadConfig::default();
        let dist = on_cluster(3, &fam.seqs, &cfg);
        let ray = on_rayon(3, &fam.seqs, &cfg);
        assert_eq!(
            fasta::write_alignment(&dist.msa),
            fasta::write_alignment(&ray.msa),
            "seed {seed}: backends must break rank ties identically"
        );
    }
}

#[test]
fn determinism_holds_across_cluster_sizes_independently() {
    // Each p gives its own deterministic answer (p changes bucketing, so
    // different p may differ — but the same p must never differ).
    let fam = family(45);
    let cfg = SadConfig::default();
    for p in [1usize, 2, 3, 5, 8] {
        let a = on_cluster(p, &fam.seqs, &cfg);
        let b = on_cluster(p, &fam.seqs, &cfg);
        assert_eq!(
            fasta::write_alignment(&a.msa),
            fasta::write_alignment(&b.msa),
            "p={p} was not deterministic"
        );
        assert_eq!(row_set(&a.msa), row_set(&b.msa));
    }
}

#[test]
fn observation_does_not_perturb_the_run() {
    // Attaching an observer and a (never-cancelled) token must not change
    // a single output byte — the pipeline layer only watches.
    let fam = family(46);
    let cfg = SadConfig::default();
    let bare = on_cluster(4, &fam.seqs, &cfg);
    let watched = Aligner::new(cfg.clone())
        .backend(Backend::Distributed(VirtualCluster::new(4, CostModel::beowulf_2008())))
        .observer(std::sync::Arc::new(|_: &Event| {}))
        .cancel_token(CancelToken::new())
        .run(&fam.seqs)
        .unwrap();
    assert_eq!(fasta::write_alignment(&bare.msa), fasta::write_alignment(&watched.msa));
    assert_eq!(bare.makespan(), watched.makespan());
    assert_eq!(bare.work, watched.work);
    assert_eq!(bare.phase_sequence(), watched.phase_sequence());
}
