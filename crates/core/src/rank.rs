//! Centralized vs globalized k-mer rank computation — the analysis behind
//! the paper's Fig. 1, Fig. 3 and Table 1.

use crate::config::SadConfig;
use bioseq::kmer::{self, KmerProfile};
use bioseq::{Sequence, Work};

/// The two rank vectors for one sequence set.
#[derive(Debug, Clone)]
pub struct RankExperiment {
    /// Rank of every sequence against the *entire* set (what a single
    /// machine would compute).
    pub centralized: Vec<f64>,
    /// Rank of every sequence against the `k·p` pooled sample (what the
    /// distributed system computes).
    pub globalized: Vec<f64>,
    /// The pooled sample's indices into the input.
    pub sample_indices: Vec<usize>,
    /// Work performed.
    pub work: Work,
}

/// Build k-mer profiles, substituting a minimal profile for sequences
/// shorter than `k` (they rank as outliers, which is correct).
fn profiles(seqs: &[Sequence], cfg: &SadConfig, work: &mut Work) -> Vec<KmerProfile> {
    seqs.iter()
        .map(|s| {
            KmerProfile::build(s, cfg.kmer_k, cfg.alphabet).unwrap_or_else(|| {
                KmerProfile::build(s, 1, cfg.alphabet).expect("k=1 always works")
            })
        })
        .inspect(|_| work.seq_bytes += 1)
        .collect()
}

/// Compute globalized ranks exactly the way the distributed pipeline does
/// (blocks of `N/p`, local rank, local sort, regular sampling, pooled
/// sample), alongside the centralized reference ranks.
pub fn rank_experiment(seqs: &[Sequence], p: usize, cfg: &SadConfig) -> RankExperiment {
    assert!(p >= 1 && !seqs.is_empty());
    let mut work = Work::ZERO;
    let profs = profiles(seqs, cfg, &mut work);

    // Centralized: every sequence against all N.
    let centralized = kmer::centralized_ranks(&profs, cfg.rank_transform, &mut work);

    // Globalized: emulate the distributed sampling.
    let n = seqs.len();
    let chunk = n.div_ceil(p);
    let k = cfg.samples_for(p);
    let mut sample_indices: Vec<usize> = Vec::with_capacity(k * p);
    for block in 0..p {
        let lo = (block * chunk).min(n);
        let hi = ((block + 1) * chunk).min(n);
        if lo >= hi {
            continue;
        }
        let idx: Vec<usize> = (lo..hi).collect();
        // Local rank within the block.
        let block_profiles: Vec<KmerProfile> = idx.iter().map(|&i| profs[i].clone()).collect();
        let local_ranks: Vec<f64> = block_profiles
            .iter()
            .map(|pr| kmer::kmer_rank(pr, &block_profiles, cfg.rank_transform, &mut work))
            .collect();
        let mut order: Vec<usize> = (0..idx.len()).collect();
        order.sort_by(|&a, &b| local_ranks[a].total_cmp(&local_ranks[b]));
        work.sort_ops += (idx.len() as f64 * (idx.len().max(2) as f64).log2()) as u64;
        // Regular sampling of k local representatives.
        let m = idx.len();
        let kk = k.min(m);
        for s in 0..kk {
            let at = ((s + 1) * m) / (kk + 1);
            sample_indices.push(idx[order[at.min(m - 1)]]);
        }
    }
    let sample_profiles: Vec<KmerProfile> =
        sample_indices.iter().map(|&i| profs[i].clone()).collect();
    let globalized =
        kmer::globalized_ranks(&profs, &sample_profiles, cfg.rank_transform, &mut work);

    RankExperiment { centralized, globalized, sample_indices, work }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosegen::{Family, FamilyConfig};

    fn family(n: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: 80,
            relatedness: 800.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    #[test]
    fn shapes_and_bounds() {
        let seqs = family(60, 1);
        let cfg = SadConfig::default();
        let exp = rank_experiment(&seqs, 4, &cfg);
        assert_eq!(exp.centralized.len(), 60);
        assert_eq!(exp.globalized.len(), 60);
        // 3 samples per block × 4 blocks.
        assert_eq!(exp.sample_indices.len(), 12);
        // PaperLog rank of D∈[0,1] lies in [ln 0.1, ln 1.1].
        for &r in exp.centralized.iter().chain(&exp.globalized) {
            assert!((0.1f64.ln()..=1.1f64.ln() + 1e-12).contains(&r), "rank {r}");
        }
        assert!(exp.work.kmer_ops > 0);
    }

    #[test]
    fn p1_sample_is_regular_subset() {
        let seqs = family(30, 2);
        let cfg = SadConfig { samples_per_rank: Some(5), ..Default::default() };
        let exp = rank_experiment(&seqs, 1, &cfg);
        assert_eq!(exp.sample_indices.len(), 5);
        // All indices valid and distinct.
        let set: std::collections::HashSet<usize> = exp.sample_indices.iter().copied().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn globalized_correlates_with_centralized() {
        // The sample-based rank must preserve the *ordering* information
        // the pipeline buckets by: Spearman-ish correlation well above 0.
        let seqs = family(80, 3);
        let cfg = SadConfig::default();
        let exp = rank_experiment(&seqs, 4, &cfg);
        let rank_of = |v: &[f64]| {
            let mut order: Vec<usize> = (0..v.len()).collect();
            order.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
            let mut pos = vec![0usize; v.len()];
            for (r, &i) in order.iter().enumerate() {
                pos[i] = r;
            }
            pos
        };
        let rc = rank_of(&exp.centralized);
        let rg = rank_of(&exp.globalized);
        let n = rc.len() as f64;
        let d2: f64 = rc.iter().zip(&rg).map(|(&a, &b)| (a as f64 - b as f64).powi(2)).sum();
        let spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
        assert!(spearman > 0.5, "spearman = {spearman}");
    }

    #[test]
    fn deterministic() {
        let seqs = family(40, 4);
        let cfg = SadConfig::default();
        let a = rank_experiment(&seqs, 4, &cfg);
        let b = rank_experiment(&seqs, 4, &cfg);
        assert_eq!(a.centralized, b.centralized);
        assert_eq!(a.globalized, b.globalized);
        assert_eq!(a.sample_indices, b.sample_indices);
    }

    #[test]
    fn full_sample_recovers_centralized() {
        // With the sample = the whole block structure at p=1 and k = n,
        // globalized equals centralized.
        let seqs = family(20, 5);
        let cfg = SadConfig { samples_per_rank: Some(20), ..Default::default() };
        let exp = rank_experiment(&seqs, 1, &cfg);
        // k is clamped to n; sample covers most of the set, so ranks come
        // close to centralized (not exactly equal — sampling positions
        // differ). Check high agreement.
        for (c, g) in exp.centralized.iter().zip(&exp.globalized) {
            assert!((c - g).abs() < 0.15, "c={c} g={g}");
        }
    }
}
