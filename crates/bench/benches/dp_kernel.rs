//! Micro-benchmarks of the `align::dp` Gotoh kernel: scalar vs striped
//! fills, banded vs full, on pairwise and profile–profile shapes.
//!
//! Beyond wall-clock timings, the bench asserts the kernel contract:
//!
//! * the adaptive band fills strictly fewer cells than the full matrix on
//!   length-500+ pairs, at the same score;
//! * the striped kernel produces identical results to the scalar kernel;
//! * the striped kernel is never a regression — at least 0.9× the scalar
//!   kernel's cells/sec on every measured shape (CI runs this bench, so a
//!   striped slowdown fails the build).
//!
//! It also writes `BENCH_dp_kernel.json` at the workspace root — one
//! entry per (case, band, kernel) with cells/sec and median wall time —
//! the committed baseline future kernel work has to beat.

use align::dp::{BandPolicy, DpArena, DpKernel};
use align::pairwise::global_align_with_kernel;
use align::papro::align_profiles_with_kernel;
use align::{MsaEngine, MuscleLite, Profile};
use bioseq::{GapPenalties, Sequence, SubstMatrix, Work};
use criterion::{criterion_group, criterion_main, Criterion};
use rosegen::{Family, FamilyConfig};

fn pair(avg_len: usize, seed: u64) -> (Sequence, Sequence) {
    let mut seqs = Family::generate(&FamilyConfig {
        n_seqs: 2,
        avg_len,
        relatedness: 800.0,
        seed,
        ..Default::default()
    })
    .seqs;
    let b = seqs.pop().expect("two sequences");
    let a = seqs.pop().expect("two sequences");
    (a, b)
}

/// One measured (case, band, kernel) point.
struct Entry {
    case: &'static str,
    band: &'static str,
    kernel: &'static str,
    dp_cells: u64,
    seconds_median: f64,
}

impl Entry {
    fn cells_per_sec(&self) -> f64 {
        self.dp_cells as f64 / self.seconds_median
    }

    fn json(&self) -> String {
        format!(
            "    {{\"case\": \"{}\", \"band\": \"{}\", \"kernel\": \"{}\", \
             \"dp_cells\": {}, \"seconds_median\": {:.9}, \"cells_per_sec\": {:.0}}}",
            self.case,
            self.band,
            self.kernel,
            self.dp_cells,
            self.seconds_median,
            self.cells_per_sec()
        )
    }
}

/// Median wall time of `runs` calls to `f`.
fn median_seconds(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

const BANDS: [(&str, BandPolicy); 2] = [("full", BandPolicy::Full), ("auto", BandPolicy::Auto)];
const KERNELS: [(&str, DpKernel); 2] =
    [("scalar", DpKernel::Scalar), ("striped", DpKernel::Striped)];

fn bench(c: &mut Criterion) {
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    let (short_a, short_b) = pair(100, 0x51);
    let (long_a, long_b) = pair(600, 0x52);
    let (xl_a, xl_b) = pair(1200, 0x54);
    let mut arena = DpArena::new();

    // Cell accounting: the acceptance bar for the banded kernel.
    let ga = |band, kernel, arena: &mut DpArena| {
        global_align_with_kernel(&long_a, &long_b, &matrix, gaps, band, kernel, arena)
    };
    let full = ga(BandPolicy::Full, DpKernel::Scalar, &mut arena);
    let auto = ga(BandPolicy::Auto, DpKernel::Scalar, &mut arena);
    println!(
        "dp_cells on L≈600 pair: banded {} vs full {} ({:.1}x fewer), scores {} == {}",
        auto.work.dp_cells,
        full.work.dp_cells,
        full.work.dp_cells as f64 / auto.work.dp_cells as f64,
        auto.score,
        full.score
    );
    assert!(
        auto.work.dp_cells < full.work.dp_cells,
        "banded must fill strictly fewer cells than full on length-500+ pairs"
    );
    assert_eq!(auto.score, full.score, "adaptive banding must stay exact");
    // Kernel identity: the striped fill is an implementation detail.
    for (_, band) in BANDS {
        let s = ga(band, DpKernel::Scalar, &mut arena);
        let v = ga(band, DpKernel::Striped, &mut arena);
        assert_eq!((s.row_a, s.row_b, s.score), (v.row_a, v.row_b, v.score));
    }

    // The profile–profile (PSP) shape, the progressive-alignment hot path.
    let fam = Family::generate(&FamilyConfig {
        n_seqs: 16,
        avg_len: 300,
        relatedness: 800.0,
        seed: 0x53,
        ..Default::default()
    })
    .seqs;
    let engine = MuscleLite::fast();
    let msa_a = engine.align(&fam[..8]);
    let msa_b = engine.align(&fam[8..]);
    let mut w = Work::ZERO;
    let pa = Profile::from_msa(&msa_a, &mut w);
    let pb = Profile::from_msa(&msa_b, &mut w);

    // Criterion timings for the headline shapes.
    for (kernel_label, kernel) in KERNELS {
        for (band_label, band) in BANDS {
            c.bench_function(&format!("dp_kernel/global_600_{band_label}_{kernel_label}"), |bch| {
                bch.iter(|| {
                    global_align_with_kernel(
                        std::hint::black_box(&long_a),
                        &long_b,
                        &matrix,
                        gaps,
                        band,
                        kernel,
                        &mut arena,
                    )
                })
            });
        }
        c.bench_function(&format!("dp_kernel/profile_8x8_L300_auto_{kernel_label}"), |bch| {
            bch.iter(|| {
                align_profiles_with_kernel(
                    std::hint::black_box(&pa),
                    &pb,
                    &matrix,
                    gaps,
                    BandPolicy::Auto,
                    kernel,
                    &mut arena,
                )
            })
        });
    }

    // The JSON baseline: every (case, band, kernel) point, median of a few
    // timed repeats.
    let mut entries: Vec<Entry> = Vec::new();
    for (case, a, b) in [
        ("global_100", &short_a, &short_b),
        ("global_600", &long_a, &long_b),
        ("global_1200", &xl_a, &xl_b),
    ] {
        for (band_label, band) in BANDS {
            for (kernel_label, kernel) in KERNELS {
                let cells = global_align_with_kernel(a, b, &matrix, gaps, band, kernel, &mut arena)
                    .work
                    .dp_cells;
                let seconds = median_seconds(9, || {
                    std::hint::black_box(global_align_with_kernel(
                        std::hint::black_box(a),
                        b,
                        &matrix,
                        gaps,
                        band,
                        kernel,
                        &mut arena,
                    ));
                });
                entries.push(Entry {
                    case,
                    band: band_label,
                    kernel: kernel_label,
                    dp_cells: cells,
                    seconds_median: seconds,
                });
            }
        }
    }
    for (band_label, band) in BANDS {
        for (kernel_label, kernel) in KERNELS {
            let cells =
                align_profiles_with_kernel(&pa, &pb, &matrix, gaps, band, kernel, &mut arena)
                    .work
                    .dp_cells;
            let seconds = median_seconds(9, || {
                std::hint::black_box(align_profiles_with_kernel(
                    std::hint::black_box(&pa),
                    &pb,
                    &matrix,
                    gaps,
                    band,
                    kernel,
                    &mut arena,
                ));
            });
            entries.push(Entry {
                case: "profile_8x8_L300",
                band: band_label,
                kernel: kernel_label,
                dp_cells: cells,
                seconds_median: seconds,
            });
        }
    }

    // CI gate: the striped kernel must not regress below 0.9× the scalar
    // kernel's throughput on any shape it ran.
    for e in &entries {
        println!(
            "{}_{}_{}: {} cells, {:.6}s median, {:.0} cells/s",
            e.case,
            e.band,
            e.kernel,
            e.dp_cells,
            e.seconds_median,
            e.cells_per_sec()
        );
    }
    for scalar in entries.iter().filter(|e| e.kernel == "scalar") {
        let striped = entries
            .iter()
            .find(|e| e.kernel == "striped" && e.case == scalar.case && e.band == scalar.band)
            .expect("every scalar shape has a striped twin");
        assert!(
            striped.cells_per_sec() >= 0.9 * scalar.cells_per_sec(),
            "striped kernel regressed on {}_{}: {:.0} cells/s vs scalar {:.0} cells/s",
            scalar.case,
            scalar.band,
            striped.cells_per_sec(),
            scalar.cells_per_sec()
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"dp_kernel\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.iter().map(Entry::json).collect::<Vec<_>>().join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dp_kernel.json");
    std::fs::write(&path, json).expect("write BENCH_dp_kernel.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
