//! Consensus ("ancestor") extraction from an alignment.
//!
//! The paper's local ancestor is the root profile of each processor's local
//! alignment, collapsed to a single representative sequence: per column the
//! majority residue, with gap-majority columns dropped. The global ancestor
//! is obtained the same way from the alignment of local ancestors.

use crate::profile::Profile;
use bioseq::{Msa, Sequence, Work};

/// Extract the consensus sequence of an alignment.
///
/// Columns where the summed gap weight strictly exceeds the summed residue
/// weight are skipped; among residues the highest-weight one wins (ties
/// break to the lowest residue code for determinism). If every column is
/// gap-dominated, the gap rule is ignored so the result is never empty.
pub fn consensus_sequence(msa: &Msa, id: impl Into<String>, work: &mut Work) -> Sequence {
    let profile = Profile::from_msa(msa, work);
    let pick = |col: &crate::profile::ProfileColumn| -> Option<u8> {
        col.residues
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(code, _)| code)
    };
    let mut codes: Vec<u8> = Vec::with_capacity(profile.len());
    for col in &profile.cols {
        if col.gap_weight > col.residue_weight() {
            continue;
        }
        if let Some(code) = pick(col) {
            codes.push(code);
        }
    }
    if codes.is_empty() {
        // Degenerate: every column gap-dominated. Fall back to per-column
        // majority residues wherever any residue exists.
        for col in &profile.cols {
            if let Some(code) = pick(col) {
                codes.push(code);
            }
        }
    }
    work.col_ops += profile.len() as u64;
    Sequence::from_codes(id, codes)
}

/// The ancestor as a full profile (used when fine-tuning wants the residue
/// distribution rather than a single representative).
pub fn ancestor_profile(msa: &Msa, work: &mut Work) -> Profile {
    Profile::from_msa(msa, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::fasta;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    #[test]
    fn unanimous_columns() {
        let m = msa(">a\nMKVL\n>b\nMKVL\n>c\nMKVL\n");
        let mut w = Work::ZERO;
        let c = consensus_sequence(&m, "anc", &mut w);
        assert_eq!(c.to_letters(), "MKVL");
        assert_eq!(c.id, "anc");
    }

    #[test]
    fn majority_wins() {
        let m = msa(">a\nMKVL\n>b\nMKVL\n>c\nMKIL\n");
        let mut w = Work::ZERO;
        let c = consensus_sequence(&m, "anc", &mut w);
        assert_eq!(c.to_letters(), "MKVL");
    }

    #[test]
    fn gap_majority_columns_dropped() {
        let m = msa(">a\nMK-VL\n>b\nMK-VL\n>c\nMKIVL\n");
        let mut w = Work::ZERO;
        let c = consensus_sequence(&m, "anc", &mut w);
        // Column 2 is 2 gaps vs 1 residue: dropped.
        assert_eq!(c.to_letters(), "MKVL");
    }

    #[test]
    fn gap_tie_keeps_column() {
        let m = msa(">a\nM-VL\n>b\nMKVL\n");
        let mut w = Work::ZERO;
        let c = consensus_sequence(&m, "anc", &mut w);
        // Column 1: one gap vs one K — tie, kept.
        assert_eq!(c.to_letters(), "MKVL");
    }

    #[test]
    fn never_empty() {
        // Pathological alignment where every column is gap-dominated.
        let m = Msa::from_rows(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![0, bioseq::GAP_CODE, bioseq::GAP_CODE],
                vec![bioseq::GAP_CODE, 1, bioseq::GAP_CODE],
                vec![bioseq::GAP_CODE, bioseq::GAP_CODE, 2],
            ],
        );
        let mut w = Work::ZERO;
        let c = consensus_sequence(&m, "anc", &mut w);
        assert!(!c.is_empty());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn deterministic_tiebreak() {
        let m = msa(">a\nA\n>b\nW\n");
        let mut w = Work::ZERO;
        let c1 = consensus_sequence(&m, "x", &mut w);
        let c2 = consensus_sequence(&m, "x", &mut w);
        assert_eq!(c1, c2);
        // Lowest code wins the tie: A (code 0) beats W.
        assert_eq!(c1.to_letters(), "A");
    }

    #[test]
    fn ancestor_profile_shape() {
        let m = msa(">a\nMKVL\n>b\nMKIL\n");
        let mut w = Work::ZERO;
        let p = ancestor_profile(&m, &mut w);
        assert_eq!(p.len(), 4);
        assert_eq!(p.n_seqs, 2);
    }
}
