//! Sample-Align-D configuration.

use crate::decomp::VerticalConfig;
use crate::error::SadError;
use align::{BandPolicy, DpKernel, EngineChoice, TrimConfig};
use bioseq::{CompressedAlphabet, GapPenalties, RankTransform, Sequence, SubstMatrix};
use serde::Serialize;

/// All knobs of the Sample-Align-D pipeline.
///
/// Marked `#[non_exhaustive]`: construct with [`SadConfig::default`] and
/// customise through the `with_*` builder setters, so new knobs are not
/// breaking changes. Fields stay public for reading.
#[derive(Debug, Clone, Serialize)]
#[non_exhaustive]
pub struct SadConfig {
    /// k-mer length for rank computation (paper/MUSCLE default 6).
    pub kmer_k: usize,
    /// Compressed alphabet for k-mer counting.
    pub alphabet: CompressedAlphabet,
    /// Transform from average k-mer measure to scalar rank.
    pub rank_transform: RankTransform,
    /// Samples contributed per processor (`k` in the paper; defaults to
    /// `p − 1` when `None`).
    pub samples_per_rank: Option<usize>,
    /// The sequential MSA engine run inside each processor.
    pub engine: EngineChoice,
    /// Run the ancestor-constrained fine-tuning + glue (step 8). Disabling
    /// it leaves the buckets block-diagonal — the ablation showing why the
    /// global ancestor matters.
    pub fine_tune: bool,
    /// Substitution matrix for ancestor alignment and fine-tuning.
    pub matrix: SubstMatrix,
    /// Gap penalties for ancestor alignment and fine-tuning.
    pub gaps: GapPenalties,
    /// Band policy for every DP kernel instance in the pipeline: the
    /// per-bucket engines, the ancestor alignment and the fine-tuning.
    /// The default, [`BandPolicy::Auto`], fills only a diagonal band and
    /// adaptively widens it until the optimum is provably unconstrained.
    pub band_policy: BandPolicy,
    /// DP kernel variant for every alignment in the pipeline. The
    /// default, [`DpKernel::Auto`], runs the striped f32 kernel whenever
    /// the scorer certifies bit-exact f32 arithmetic and the scalar f64
    /// kernel otherwise; `Scalar`/`Striped` force one variant.
    pub dp_kernel: DpKernel,
    /// Hierarchical bucketing cap (the Pyro-Align large-N read mode):
    /// when set, any post-redistribution bucket larger than this is
    /// recursively re-sampled and re-partitioned
    /// ([`crate::Phase::SubPartition`]) until every leaf bucket fits, so
    /// no single engine run — and no single rank — ever centralises an
    /// oversized bucket. `None` (the default) keeps the flat paper
    /// pipeline. Supported on the rayon backend; the sequential backend
    /// has no buckets and ignores it; the distributed backend rejects it
    /// with [`SadError::MaxBucketUnsupported`].
    pub max_bucket: Option<usize>,
    /// Vertical (length-wise) domain decomposition: when set, the run
    /// scans for conserved anchors ([`crate::Phase::AnchorScan`]), slices
    /// every sequence at the chained anchors into consistent blocks,
    /// aligns each block as an independent job on the worker pool
    /// ([`crate::Phase::BlockAlign`]), and glues the block alignments
    /// with seam-window refinement ([`crate::Phase::Glue`]). `None` (the
    /// default) aligns whole sequences. Supported on the sequential and
    /// rayon backends; the distributed backend rejects it with
    /// [`SadError::VerticalUnsupported`].
    pub vertical: Option<VerticalConfig>,
    /// Seed profile merges in the capped-bucket read path with the
    /// conserved-anchor scan (pinning agreeing consensus columns and
    /// aligning only the stretches in between). On by default; only
    /// takes effect when [`SadConfig::max_bucket`] is set.
    pub anchored_merge: bool,
    /// MaxAlign-style alignment-area trim ([`crate::Phase::Trim`]): when
    /// set, the finished root alignment is post-processed by
    /// [`align::trim::trim_msa`] — rows are greedily excluded (with
    /// synergy lookahead, and optional branch-and-bound refinement) to
    /// maximise `retained rows × gap-free columns`; the reported area
    /// never decreases. Runs on every backend: the stage operates on the
    /// root MSA after glue, so the distributed backend needs no
    /// collective. `None` (the default) leaves the alignment untouched.
    pub trim: Option<TrimConfig>,
}

impl Default for SadConfig {
    fn default() -> Self {
        SadConfig {
            kmer_k: 6,
            alphabet: CompressedAlphabet::Dayhoff6,
            rank_transform: RankTransform::PaperLog,
            samples_per_rank: None,
            engine: EngineChoice::MuscleFast,
            fine_tune: true,
            matrix: SubstMatrix::blosum62(),
            gaps: GapPenalties::default(),
            band_policy: BandPolicy::default(),
            dp_kernel: DpKernel::default(),
            max_bucket: None,
            vertical: None,
            anchored_merge: true,
            trim: None,
        }
    }
}

impl SadConfig {
    /// Set the k-mer length for rank computation.
    pub fn with_kmer_k(mut self, k: usize) -> Self {
        self.kmer_k = k;
        self
    }

    /// Set the compressed alphabet for k-mer counting.
    pub fn with_alphabet(mut self, alphabet: CompressedAlphabet) -> Self {
        self.alphabet = alphabet;
        self
    }

    /// Set the rank transform.
    pub fn with_rank_transform(mut self, transform: RankTransform) -> Self {
        self.rank_transform = transform;
        self
    }

    /// Set an explicit per-rank sample count (`None` restores the
    /// paper's `p − 1` default).
    pub fn with_samples_per_rank(mut self, samples: Option<usize>) -> Self {
        self.samples_per_rank = samples;
        self
    }

    /// Select the sequential MSA engine run inside each processor.
    pub fn with_engine(mut self, engine: EngineChoice) -> Self {
        self.engine = engine;
        self
    }

    /// Enable or disable the ancestor-constrained fine-tuning + glue.
    pub fn with_fine_tune(mut self, fine_tune: bool) -> Self {
        self.fine_tune = fine_tune;
        self
    }

    /// Set the substitution matrix for ancestor alignment and fine-tuning.
    pub fn with_matrix(mut self, matrix: SubstMatrix) -> Self {
        self.matrix = matrix;
        self
    }

    /// Set the gap penalties for ancestor alignment and fine-tuning.
    pub fn with_gaps(mut self, gaps: GapPenalties) -> Self {
        self.gaps = gaps;
        self
    }

    /// Set the DP kernel band policy for the whole pipeline.
    pub fn with_band_policy(mut self, band_policy: BandPolicy) -> Self {
        self.band_policy = band_policy;
        self
    }

    /// Select the DP kernel variant for the whole pipeline.
    pub fn with_dp_kernel(mut self, kernel: DpKernel) -> Self {
        self.dp_kernel = kernel;
        self
    }

    /// Cap bucket sizes via hierarchical sub-partitioning (`None`
    /// restores the flat paper pipeline).
    pub fn with_max_bucket(mut self, cap: Option<usize>) -> Self {
        self.max_bucket = cap;
        self
    }

    /// Enable vertical (length-wise) domain decomposition with the given
    /// knobs. Use [`SadConfig::without_vertical`] to restore whole-length
    /// alignment.
    pub fn with_vertical(mut self, vertical: VerticalConfig) -> Self {
        self.vertical = Some(vertical);
        self
    }

    /// Disable vertical decomposition (the default).
    pub fn without_vertical(mut self) -> Self {
        self.vertical = None;
        self
    }

    /// Enable or disable anchor-seeded profile merges in the
    /// capped-bucket read path.
    pub fn with_anchored_merge(mut self, anchored: bool) -> Self {
        self.anchored_merge = anchored;
        self
    }

    /// Post-process the finished alignment with the MaxAlign-style
    /// area trim. Use [`SadConfig::without_trim`] to restore the
    /// untouched output (the default).
    pub fn with_trim(mut self, trim: TrimConfig) -> Self {
        self.trim = Some(trim);
        self
    }

    /// Disable the trim stage (the default).
    pub fn without_trim(mut self) -> Self {
        self.trim = None;
        self
    }

    /// Effective sample count per rank for a cluster of `p`.
    pub fn samples_for(&self, p: usize) -> usize {
        self.samples_per_rank.unwrap_or_else(|| p.saturating_sub(1)).max(1)
    }

    /// Check the configuration's internal consistency: `kmer_k` must be
    /// positive and an explicit `samples_per_rank` must be positive.
    /// Called by [`crate::Aligner::run`] before the pipeline starts.
    pub fn validate(&self) -> Result<(), SadError> {
        if self.kmer_k == 0 {
            return Err(SadError::ZeroKmerLen);
        }
        if self.samples_per_rank == Some(0) {
            return Err(SadError::ZeroSampleCount);
        }
        if self.band_policy == BandPolicy::Fixed(0) {
            return Err(SadError::ZeroBandWidth);
        }
        if self.max_bucket == Some(0) {
            return Err(SadError::ZeroMaxBucket);
        }
        if let Some(vertical) = &self.vertical {
            vertical.validate()?;
        }
        Ok(())
    }

    /// [`validate`](Self::validate) plus input-dependent checks: at least
    /// two sequences, and `kmer_k` shorter than the shortest sequence.
    ///
    /// The pipeline itself tolerates over-long `k` by degrading the
    /// offending sequences to k = 1 profiles (they rank as outliers);
    /// callers that would rather fail loudly — the CLI does — use this
    /// strict form.
    pub fn validate_for(&self, seqs: &[Sequence]) -> Result<(), SadError> {
        self.validate()?;
        if seqs.len() < 2 {
            return Err(SadError::TooFewSequences { found: seqs.len() });
        }
        let shortest = seqs.iter().map(Sequence::len).min().expect("non-empty");
        if self.kmer_k >= shortest {
            return Err(SadError::KmerExceedsShortest { k: self.kmer_k, shortest });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_samples_follow_paper() {
        let cfg = SadConfig::default();
        assert_eq!(cfg.samples_for(16), 15);
        assert_eq!(cfg.samples_for(1), 1); // never zero samples
    }

    #[test]
    fn explicit_sample_count_wins() {
        let cfg = SadConfig::default().with_samples_per_rank(Some(5));
        assert_eq!(cfg.samples_for(16), 5);
    }

    #[test]
    fn builder_setters_cover_every_knob() {
        let cfg = SadConfig::default()
            .with_kmer_k(4)
            .with_alphabet(CompressedAlphabet::Identity)
            .with_rank_transform(RankTransform::Linear)
            .with_samples_per_rank(Some(3))
            .with_engine(EngineChoice::Clustal)
            .with_fine_tune(false)
            .with_matrix(SubstMatrix::blosum62())
            .with_gaps(GapPenalties::default())
            .with_band_policy(BandPolicy::Fixed(48))
            .with_dp_kernel(DpKernel::Striped)
            .with_max_bucket(Some(256))
            .with_vertical(VerticalConfig { seam_window: 8, ..Default::default() })
            .with_anchored_merge(false)
            .with_trim(TrimConfig { max_dropped: Some(2), branch_bound: true });
        assert_eq!(cfg.kmer_k, 4);
        assert_eq!(cfg.samples_per_rank, Some(3));
        assert_eq!(cfg.engine, EngineChoice::Clustal);
        assert!(!cfg.fine_tune);
        assert_eq!(cfg.band_policy, BandPolicy::Fixed(48));
        assert_eq!(cfg.dp_kernel, DpKernel::Striped);
        assert_eq!(cfg.max_bucket, Some(256));
        assert_eq!(cfg.vertical.as_ref().map(|v| v.seam_window), Some(8));
        assert!(!cfg.anchored_merge);
        assert_eq!(cfg.trim, Some(TrimConfig { max_dropped: Some(2), branch_bound: true }));
        let cfg = cfg.without_vertical();
        assert_eq!(cfg.vertical, None);
        assert_eq!(cfg.clone().without_trim().trim, None);
    }

    #[test]
    fn validate_rejects_degenerate_vertical() {
        let zero_anchor = VerticalConfig { min_anchor_len: 0, ..Default::default() };
        assert_eq!(
            SadConfig::default().with_vertical(zero_anchor).validate(),
            Err(SadError::InvalidVertical { what: "min_anchor_len" })
        );
        let zero_block = VerticalConfig { max_block_len: 0, ..Default::default() };
        assert_eq!(
            SadConfig::default().with_vertical(zero_block).validate(),
            Err(SadError::InvalidVertical { what: "max_block_len" })
        );
        let ok = VerticalConfig::default();
        assert_eq!(SadConfig::default().with_vertical(ok).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_max_bucket() {
        assert_eq!(
            SadConfig::default().with_max_bucket(Some(0)).validate(),
            Err(SadError::ZeroMaxBucket)
        );
        assert_eq!(SadConfig::default().with_max_bucket(Some(1)).validate(), Ok(()));
        assert_eq!(SadConfig::default().with_max_bucket(None).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_band_width() {
        assert_eq!(
            SadConfig::default().with_band_policy(BandPolicy::Fixed(0)).validate(),
            Err(SadError::ZeroBandWidth)
        );
        for ok in [BandPolicy::Full, BandPolicy::Auto, BandPolicy::Fixed(1)] {
            assert_eq!(SadConfig::default().with_band_policy(ok).validate(), Ok(()));
        }
    }

    #[test]
    fn validate_accepts_the_default() {
        assert_eq!(SadConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_kmer() {
        assert_eq!(SadConfig::default().with_kmer_k(0).validate(), Err(SadError::ZeroKmerLen));
    }

    #[test]
    fn validate_rejects_zero_sample_count() {
        assert_eq!(
            SadConfig::default().with_samples_per_rank(Some(0)).validate(),
            Err(SadError::ZeroSampleCount)
        );
    }

    #[test]
    fn validate_for_rejects_overlong_kmer() {
        let seqs =
            vec![Sequence::from_codes("a", vec![0, 1, 2]), Sequence::from_codes("b", vec![3; 10])];
        let err = SadConfig::default().validate_for(&seqs).unwrap_err();
        assert_eq!(err, SadError::KmerExceedsShortest { k: 6, shortest: 3 });
        assert_eq!(SadConfig::default().with_kmer_k(2).validate_for(&seqs), Ok(()));
    }

    #[test]
    fn validate_for_rejects_degenerate_inputs() {
        let one = vec![Sequence::from_codes("a", vec![0; 20])];
        assert_eq!(
            SadConfig::default().validate_for(&[]),
            Err(SadError::TooFewSequences { found: 0 })
        );
        assert_eq!(
            SadConfig::default().validate_for(&one),
            Err(SadError::TooFewSequences { found: 1 })
        );
    }

    #[test]
    fn config_serialises() {
        // No serde format crate in the dependency set; assert the bound
        // compiles so downstream tooling can serialise configs.
        fn assert_serialize<T: serde::Serialize>(_: &T) {}
        assert_serialize(&SadConfig::default());
    }
}
