//! # phylo — distance-matrix phylogenetic trees
//!
//! Guide trees drive progressive alignment (MUSCLE, CLUSTALW) and the
//! rose-like sequence generator. This crate implements:
//!
//! * [`tree`] — an arena-allocated rooted binary tree with branch lengths,
//!   post-order traversal, leaf sets and edge bipartitions;
//! * [`distmat`] — a compact symmetric distance matrix;
//! * [`mod@upgma`] — UPGMA/WPGMA agglomerative clustering in `O(n²)` expected
//!   time using nearest-neighbour arrays;
//! * [`nj`] — canonical neighbor joining (`O(n³)`), used by the
//!   CLUSTALW-like engine;
//! * [`newick`] — Newick serialisation and parsing for interop/debugging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distmat;
pub mod newick;
pub mod nj;
pub mod tree;
pub mod upgma;

pub use distmat::DistMatrix;
pub use nj::neighbor_joining;
pub use tree::{NodeId, Tree};
pub use upgma::{upgma, wpgma, Linkage};
