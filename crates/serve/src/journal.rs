//! The write-ahead job journal: append-only JSONL, replayed on restart.
//!
//! Every job leaves a durable trail: one [`JournalEntry::Accepted`] line
//! (carrying the full input so a restarted server can re-run the job
//! without the submitting client), one `Started` line per attempt, and
//! exactly one terminal `Finished` line — with the output digest on
//! success, so recovery can verify the output file before trusting it.
//!
//! Replay is tolerant of exactly one failure mode: a torn or truncated
//! **final** line (the write the process died inside). Anything else —
//! garbage in the middle of the file, an unknown entry kind, a missing
//! field — is a hard [`JournalError::CorruptLine`]: the journal is the
//! source of truth for what work is owed, and silently skipping interior
//! damage could drop or double-run jobs.

use crate::json::Json;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// A job entered the system: the write that makes it durable. Carries
    /// everything needed to re-run it after a crash.
    Accepted {
        /// Server-unique job id.
        job: String,
        /// Submitting client (connection number; `None` for jobs re-queued
        /// by recovery).
        client: Option<u64>,
        /// Scheduling priority (higher first).
        priority: i64,
        /// Digest of `fasta` (the cache key's first half).
        input: String,
        /// Fingerprint of the config the job will run under (the cache
        /// key's second half).
        fingerprint: String,
        /// The raw FASTA input.
        fasta: String,
    },
    /// A worker picked the job up. A job may start more than once across
    /// restarts; it finishes exactly once.
    Started {
        /// The job id.
        job: String,
    },
    /// The job reached a terminal state.
    Finished {
        /// The job id.
        job: String,
        /// Whether an alignment was produced.
        ok: bool,
        /// Digest of the written output file (present iff `ok`).
        digest: Option<String>,
        /// The failure rendering (present iff `!ok`).
        error: Option<String>,
    },
}

impl JournalEntry {
    /// The job id this entry belongs to.
    pub fn job(&self) -> &str {
        match self {
            JournalEntry::Accepted { job, .. }
            | JournalEntry::Started { job }
            | JournalEntry::Finished { job, .. } => job,
        }
    }

    /// Encode as one JSONL line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            JournalEntry::Accepted { job, client, priority, input, fingerprint, fasta } => {
                Json::obj([
                    ("entry", Json::str("accepted")),
                    ("job", Json::str(job)),
                    ("client", client.map_or(Json::Null, |c| Json::Num(c as f64))),
                    ("priority", Json::Num(*priority as f64)),
                    ("input", Json::str(input)),
                    ("fingerprint", Json::str(fingerprint)),
                    ("fasta", Json::str(fasta)),
                ])
            }
            JournalEntry::Started { job } => {
                Json::obj([("entry", Json::str("started")), ("job", Json::str(job))])
            }
            JournalEntry::Finished { job, ok, digest, error } => Json::obj([
                ("entry", Json::str("finished")),
                ("job", Json::str(job)),
                ("ok", Json::Bool(*ok)),
                ("digest", digest.as_ref().map_or(Json::Null, Json::str)),
                ("error", error.as_ref().map_or(Json::Null, Json::str)),
            ]),
        }
        .encode()
    }

    /// Decode one journal line.
    pub fn decode(line: &str) -> Result<JournalEntry, String> {
        let value = Json::parse(line).map_err(|e| e.to_string())?;
        let kind = value
            .get("entry")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"entry\" kind".to_string())?;
        let job = value
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing \"job\" id".to_string())?
            .to_string();
        let text = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing {key:?}"))
        };
        match kind {
            "accepted" => Ok(JournalEntry::Accepted {
                job,
                client: value.get("client").and_then(Json::as_u64),
                priority: value.get("priority").and_then(Json::as_i64).unwrap_or(0),
                input: text("input")?,
                fingerprint: text("fingerprint")?,
                fasta: text("fasta")?,
            }),
            "started" => Ok(JournalEntry::Started { job }),
            "finished" => {
                let ok = value
                    .get("ok")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| "missing \"ok\" verdict".to_string())?;
                Ok(JournalEntry::Finished {
                    job,
                    ok,
                    digest: value.get("digest").and_then(Json::as_str).map(str::to_string),
                    error: value.get("error").and_then(Json::as_str).map(str::to_string),
                })
            }
            other => Err(format!("unknown entry kind {other:?}")),
        }
    }
}

/// Why a journal could not be replayed.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// A non-final line failed to decode — interior corruption is never
    /// silently skipped.
    CorruptLine {
        /// 1-based line number.
        line: usize,
        /// The decode failure.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::CorruptLine { line, reason } => {
                write!(f, "corrupt journal line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The outcome of replaying a journal file.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every decoded entry, in file order.
    pub entries: Vec<JournalEntry>,
    /// Whether an unparseable final line was dropped (a torn write from
    /// the previous process's death).
    pub dropped_torn_tail: bool,
}

/// Replay a journal file. A missing file is an empty journal. The final
/// line is allowed to be torn (dropped, reported via
/// [`Replay::dropped_torn_tail`]); any earlier undecodable line is a hard
/// [`JournalError::CorruptLine`].
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(JournalError::Io(e)),
    };
    let lines: Vec<&str> = text.split('\n').collect();
    let mut replay = Replay::default();
    // `split('\n')` yields a final "" for a well-terminated file; a
    // non-empty final element means the last write had no newline — the
    // classic torn tail.
    let last = lines.len() - 1;
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        match JournalEntry::decode(line) {
            Ok(entry) => replay.entries.push(entry),
            Err(_) if i == last || (i == last - 1 && lines[last].is_empty()) => {
                // The final line of the file: tolerated as a torn write.
                replay.dropped_torn_tail = true;
            }
            Err(reason) => return Err(JournalError::CorruptLine { line: i + 1, reason }),
        }
    }
    Ok(replay)
}

/// The append-only journal writer. One line per entry, fsynced
/// (`sync_data`) before the call returns, so an entry is durable against
/// both process death and OS crash/power loss before dependent state —
/// the client's `accepted` ack in particular — becomes visible.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    /// Open (creating if missing) the journal at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> Result<Journal, JournalError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry and fsync it. `File::flush` would be a no-op
    /// (std files have no userspace buffer); only `sync_data` makes the
    /// write-ahead guarantee hold across an OS crash.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), JournalError> {
        let mut line = entry.encode();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sad-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry::Accepted {
                job: "fam_a".into(),
                client: Some(1),
                priority: 2,
                input: "00000000deadbeef".into(),
                fingerprint: "0000000000000001".into(),
                fasta: ">a\nMKVL\n>b\nMKIL\n".into(),
            },
            JournalEntry::Started { job: "fam_a".into() },
            JournalEntry::Finished {
                job: "fam_a".into(),
                ok: true,
                digest: Some("00000000cafebabe".into()),
                error: None,
            },
            JournalEntry::Finished {
                job: "fam_b".into(),
                ok: false,
                digest: None,
                error: Some("cancelled before start".into()),
            },
        ]
    }

    #[test]
    fn entries_roundtrip_through_jsonl() {
        for entry in sample_entries() {
            let line = entry.encode();
            assert!(!line.contains('\n'), "one line per entry: {line}");
            assert_eq!(JournalEntry::decode(&line).unwrap(), entry, "{line}");
            assert_eq!(
                entry.job(),
                if matches!(entry, JournalEntry::Finished { ok: false, .. }) {
                    "fam_b"
                } else {
                    "fam_a"
                }
            );
        }
    }

    #[test]
    fn append_then_replay_is_identity() {
        let path = tmp("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path).unwrap();
        for entry in sample_entries() {
            journal.append(&entry).unwrap();
        }
        let replay = replay(&path).unwrap();
        assert_eq!(replay.entries, sample_entries());
        assert!(!replay.dropped_torn_tail);
    }

    #[test]
    fn missing_journal_is_empty() {
        let replay = replay(Path::new("/nonexistent/sad/journal.jsonl")).unwrap();
        assert!(replay.entries.is_empty());
        assert!(!replay.dropped_torn_tail);
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let path = tmp("torn.jsonl");
        let good = JournalEntry::Started { job: "fam_a".into() }.encode();
        // Case 1: the process died mid-write — no trailing newline.
        std::fs::write(&path, format!("{good}\n{{\"entry\":\"finis")).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert!(r.dropped_torn_tail);
        // Case 2: a newline made it out but the line is still garbage.
        std::fs::write(&path, format!("{good}\n{{\"entry\":\"finis\n")).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert!(r.dropped_torn_tail);
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = tmp("corrupt.jsonl");
        let good = JournalEntry::Started { job: "fam_a".into() }.encode();
        std::fs::write(&path, format!("{good}\nGARBAGE NOT JSON\n{good}\n")).unwrap();
        match replay(&path) {
            Err(JournalError::CorruptLine { line: 2, .. }) => {}
            other => panic!("expected CorruptLine at 2, got {other:?}"),
        }
        // Decodable JSON with an unknown kind is just as corrupt.
        std::fs::write(&path, format!("{{\"entry\":\"exploded\",\"job\":\"x\"}}\n{good}\n"))
            .unwrap();
        match replay(&path) {
            Err(JournalError::CorruptLine { line: 1, reason }) => {
                assert!(reason.contains("exploded"), "{reason}");
                assert!(format!("{}", JournalError::CorruptLine { line: 1, reason })
                    .contains("corrupt journal line 1"));
            }
            other => panic!("expected CorruptLine at 1, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_missing_fields() {
        for bad in [
            "{\"job\":\"x\"}",
            "{\"entry\":\"accepted\",\"job\":\"x\"}",
            "{\"entry\":\"finished\",\"job\":\"x\"}",
            "{\"entry\":\"started\"}",
        ] {
            assert!(JournalEntry::decode(bad).is_err(), "{bad}");
        }
    }
}
