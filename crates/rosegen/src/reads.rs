//! Pyrosequencing-style read simulation: fragment a family's sequences
//! into short overlapping reads with homopolymer-biased indel errors.
//!
//! Pyro-Align (the authors' follow-up to Sample-Align-D) aligns tens of
//! thousands of short 454 reads drawn from one genomic region. This module
//! reproduces that workload shape from any generated [`crate::Family`]:
//! each row of the family's true alignment is fragmented into reads of
//! roughly `read_len` residues at the requested coverage, and each read is
//! then corrupted with the 454 error model — *overcalls* (an extra copy of
//! the current residue) and *undercalls* (a dropped residue), with the
//! event probability scaled by the length of the homopolymer run at that
//! position, which is exactly where pyrosequencers err.
//!
//! Every residue of every read carries a **true column key**, so the read
//! set knows its own reference alignment: original residues keep the
//! source alignment's column, overcalled residues mint fresh sub-columns
//! anchored after the column they duplicate. The truth is kept *sparse*
//! (per-read key lists) so a 50k-read set costs megabytes, not the
//! gigabytes a dense 50k-row reference matrix would need; [`ReadSet::
//! reference_msa`] materialises the dense form for small sets and
//! [`ReadSet::true_pair`] projects the exact two-row reference alignment
//! of any read pair for PREFAB-style Q scoring at any scale.

use crate::family::Family;
use crate::rng::{geometric, normal};
use bioseq::alphabet::GAP_CODE;
use bioseq::{Msa, Sequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Bits of a column key reserved for overcall sub-columns.
const SUB_BITS: u32 = 24;

/// Parameters of a simulated read set.
#[derive(Debug, Clone)]
pub struct ReadSimConfig {
    /// Mean sequencing depth per source position; the number of reads cut
    /// from a source row of length `L` is `coverage × L / read_len`
    /// (ignored when [`ReadSimConfig::total_reads`] is set).
    pub coverage: f64,
    /// Exact number of reads to generate, distributed across source rows
    /// in proportion to their lengths. Overrides `coverage`.
    pub total_reads: Option<usize>,
    /// Mean read length in residues.
    pub read_len: usize,
    /// Standard deviation of the read length.
    pub len_sd: f64,
    /// Per-residue probability that an error event starts at a position in
    /// a run of length 1; a run of length `r` multiplies this by `r`,
    /// mimicking pyrosequencing's homopolymer weakness.
    pub error_rate: f64,
    /// Reads never shrink below this many residues (undercalls that would
    /// go lower are skipped, sampled reads are at least this long).
    pub min_len: usize,
    /// RNG seed (read sets are fully deterministic given their config).
    pub seed: u64,
    /// Identifier prefix: reads are named `<prefix><index>`.
    pub id_prefix: String,
}

impl Default for ReadSimConfig {
    fn default() -> Self {
        ReadSimConfig {
            coverage: 8.0,
            total_reads: None,
            read_len: 90,
            len_sd: 10.0,
            error_rate: 0.01,
            min_len: 30,
            seed: 0,
            id_prefix: "read".to_string(),
        }
    }
}

/// A simulated read set with its implicit reference alignment.
#[derive(Debug, Clone)]
pub struct ReadSet {
    /// The (error-corrupted) reads.
    pub reads: Vec<Sequence>,
    /// `truth[i][j]` is the true column key of read `i`'s `j`-th residue;
    /// each list is strictly increasing, and equal keys across reads mean
    /// "aligned in the reference".
    pub truth: Vec<Vec<u64>>,
    /// Index of the source alignment row each read was cut from.
    pub sources: Vec<usize>,
}

impl ReadSet {
    /// Fragment a family's sequences into reads (see module docs).
    pub fn from_family(fam: &Family, cfg: &ReadSimConfig) -> ReadSet {
        ReadSet::from_reference(&fam.reference, cfg)
    }

    /// Fragment the rows of a reference alignment into reads. Original
    /// residues inherit the alignment's column indices as truth keys, so
    /// reads cut from homologous regions of different rows overlap in the
    /// implied reference.
    ///
    /// # Panics
    /// Panics if the alignment is empty, `read_len == 0`, `min_len == 0`,
    /// or `error_rate` is not in `[0, 1)`.
    pub fn from_reference(reference: &Msa, cfg: &ReadSimConfig) -> ReadSet {
        assert!(reference.num_rows() > 0, "need at least one source row");
        assert!(cfg.read_len > 0 && cfg.min_len > 0, "read lengths must be positive");
        assert!(cfg.min_len <= cfg.read_len, "min_len must not exceed read_len");
        assert!((0.0..1.0).contains(&cfg.error_rate), "error_rate must be in [0, 1)");
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Source rows as (column key, residue) pairs; original columns are
        // key `col << SUB_BITS`, leaving sub-column space for overcalls.
        let rows: Vec<Vec<(u64, u8)>> = (0..reference.num_rows())
            .map(|i| {
                reference
                    .row(i)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c != GAP_CODE)
                    .map(|(col, &c)| ((col as u64) << SUB_BITS, c))
                    .collect()
            })
            .collect();
        let total_len: usize = rows.iter().map(Vec::len).sum();
        assert!(total_len > 0, "source alignment has no residues");

        // How many reads to cut from each row: proportional to length,
        // with the remainder of an exact total spread over the longest
        // rows first (deterministic).
        let quota: Vec<usize> = match cfg.total_reads {
            Some(total) => {
                let mut q: Vec<usize> =
                    rows.iter().map(|r| total * r.len() / total_len.max(1)).collect();
                let mut short = total.saturating_sub(q.iter().sum::<usize>());
                let mut by_len: Vec<usize> = (0..rows.len()).collect();
                by_len.sort_by_key(|&i| std::cmp::Reverse(rows[i].len()));
                for &i in by_len.iter().cycle().take(short.min(total)) {
                    q[i] += 1;
                    short -= 1;
                    if short == 0 {
                        break;
                    }
                }
                q
            }
            None => rows
                .iter()
                .map(|r| {
                    ((cfg.coverage * r.len() as f64 / cfg.read_len as f64).round() as usize).max(1)
                })
                .collect(),
        };

        let mut sub_counters: HashMap<u64, u64> = HashMap::new();
        let mut reads = Vec::new();
        let mut truth = Vec::new();
        let mut sources = Vec::new();
        for (row_idx, (row, &n_reads)) in rows.iter().zip(quota.iter()).enumerate() {
            for _ in 0..n_reads {
                let want = normal(&mut rng, cfg.read_len as f64, cfg.len_sd).round();
                let len = (want.max(cfg.min_len as f64) as usize).min(row.len()).max(1);
                let start = rng.gen_range(0..=row.len() - len);
                let mut read: Vec<(u64, u8)> = row[start..start + len].to_vec();
                apply_homopolymer_errors(&mut read, cfg, &mut rng, &mut sub_counters);
                sources.push(row_idx);
                truth.push(read.iter().map(|&(k, _)| k).collect());
                reads.push(read.into_iter().map(|(_, r)| r).collect::<Vec<u8>>());
            }
        }

        // Stable ids; width covers the final count.
        let width = reads.len().to_string().len().max(4);
        let reads = reads
            .into_iter()
            .enumerate()
            .map(|(i, codes)| {
                Sequence::from_codes(format!("{}{:02$}", cfg.id_prefix, i, width), codes)
            })
            .collect();
        let set = ReadSet { reads, truth, sources };
        debug_assert!(set.truth.iter().all(|t| t.windows(2).all(|w| w[0] < w[1])));
        set
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the set holds no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Number of reference columns reads `i` and `j` share (residues that
    /// are aligned to each other in the truth).
    pub fn overlap(&self, i: usize, j: usize) -> usize {
        merge_count(&self.truth[i], &self.truth[j])
    }

    /// The exact two-row reference alignment of reads `i` and `j`: their
    /// residues scattered over the union of their true columns. Suitable
    /// as the `ref` rows of [`bioseq::compare::q_score_pair`].
    pub fn true_pair(&self, i: usize, j: usize) -> (Vec<u8>, Vec<u8>) {
        let (ta, tb) = (&self.truth[i], &self.truth[j]);
        let (ca, cb) = (self.reads[i].codes(), self.reads[j].codes());
        let mut row_a = Vec::with_capacity(ta.len() + tb.len());
        let mut row_b = Vec::with_capacity(ta.len() + tb.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < ta.len() || b < tb.len() {
            let ka = ta.get(a).copied().unwrap_or(u64::MAX);
            let kb = tb.get(b).copied().unwrap_or(u64::MAX);
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    row_a.push(ca[a]);
                    row_b.push(GAP_CODE);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    row_a.push(GAP_CODE);
                    row_b.push(cb[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    row_a.push(ca[a]);
                    row_b.push(cb[b]);
                    a += 1;
                    b += 1;
                }
            }
        }
        (row_a, row_b)
    }

    /// Materialise the dense reference alignment of the whole read set.
    ///
    /// Dense means O(reads × columns) memory — fine for the thousands of
    /// reads the quality harness scores, ruinous at 50k; large-scale
    /// scoring should sample pairs through [`ReadSet::true_pair`] instead.
    pub fn reference_msa(&self) -> Msa {
        let mut cols: Vec<u64> = self.truth.iter().flatten().copied().collect();
        cols.sort_unstable();
        cols.dedup();
        let pos: HashMap<u64, usize> = cols.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let rows: Vec<Vec<u8>> = self
            .truth
            .iter()
            .zip(&self.reads)
            .map(|(keys, read)| {
                let mut row = vec![GAP_CODE; cols.len()];
                for (&k, &res) in keys.iter().zip(read.codes()) {
                    row[pos[&k]] = res;
                }
                row
            })
            .collect();
        let ids = self.reads.iter().map(|r| r.id.clone()).collect();
        Msa::from_rows(ids, rows)
    }
}

/// Count equal keys in two strictly-increasing lists.
fn merge_count(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Walk the read and inject 454-style errors: at each position, an error
/// event fires with probability `error_rate × run_len` (capped at 0.5);
/// half the events *undercall* (drop the residue), half *overcall*
/// (insert geometric-many duplicates of it in fresh sub-columns).
fn apply_homopolymer_errors(
    read: &mut Vec<(u64, u8)>,
    cfg: &ReadSimConfig,
    rng: &mut StdRng,
    sub_counters: &mut HashMap<u64, u64>,
) {
    if cfg.error_rate == 0.0 {
        return;
    }
    let mut pos = 0usize;
    while pos < read.len() {
        let res = read[pos].1;
        let run = read[pos..].iter().take_while(|&&(_, r)| r == res).count();
        let p = (cfg.error_rate * run as f64).min(0.5);
        if rng.gen_bool(p) {
            if rng.gen_bool(0.5) {
                // Undercall: the run reads one residue short.
                if read.len() > cfg.min_len {
                    read.remove(pos);
                    continue;
                }
            } else {
                // Overcall: extra copies of the current residue, each in a
                // fresh sub-column anchored after the duplicated one.
                let extra = geometric(rng, 0.7);
                let anchor = read[pos].0 >> SUB_BITS;
                let fresh: Vec<(u64, u8)> = (0..extra)
                    .map(|_| {
                        let counter = sub_counters.entry(anchor).or_insert(0);
                        *counter += 1;
                        assert!(*counter < (1 << SUB_BITS), "sub-column space exhausted");
                        ((anchor << SUB_BITS) | *counter, res)
                    })
                    .collect();
                read.splice(pos + 1..pos + 1, fresh);
                pos += extra;
            }
        }
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyConfig;
    use bioseq::compare::q_score_pair;

    fn small_family() -> Family {
        Family::generate(&FamilyConfig {
            n_seqs: 4,
            avg_len: 200,
            relatedness: 300.0,
            seed: 9,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_per_seed() {
        let fam = small_family();
        let cfg = ReadSimConfig { seed: 5, ..Default::default() };
        let a = ReadSet::from_family(&fam, &cfg);
        let b = ReadSet::from_family(&fam, &cfg);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.truth, b.truth);
        let c = ReadSet::from_family(&fam, &ReadSimConfig { seed: 6, ..cfg });
        assert_ne!(a.reads, c.reads);
    }

    #[test]
    fn coverage_controls_read_count() {
        let fam = small_family();
        let lo = ReadSet::from_family(&fam, &ReadSimConfig { coverage: 4.0, ..Default::default() });
        let hi =
            ReadSet::from_family(&fam, &ReadSimConfig { coverage: 16.0, ..Default::default() });
        assert!(hi.len() > lo.len() * 3, "coverage 16x vs 4x: {} vs {}", hi.len(), lo.len());
        // Total residues ≈ coverage × total source length.
        let total: usize = fam.seqs.iter().map(Sequence::len).sum();
        let bases: usize = lo.reads.iter().map(Sequence::len).sum();
        let depth = bases as f64 / total as f64;
        assert!((2.0..8.0).contains(&depth), "4x requested, got {depth:.1}x");
    }

    #[test]
    fn total_reads_is_exact() {
        let fam = small_family();
        for want in [1usize, 7, 100, 1003] {
            let set = ReadSet::from_family(
                &fam,
                &ReadSimConfig { total_reads: Some(want), ..Default::default() },
            );
            assert_eq!(set.len(), want);
        }
    }

    #[test]
    fn error_free_reads_are_exact_fragments() {
        let fam = small_family();
        let set = ReadSet::from_family(
            &fam,
            &ReadSimConfig { error_rate: 0.0, seed: 2, ..Default::default() },
        );
        for (i, read) in set.reads.iter().enumerate() {
            let src = fam.seqs[set.sources[i]].to_letters();
            assert!(
                src.contains(&read.to_letters()),
                "read {i} is not a substring of its source row"
            );
        }
    }

    #[test]
    fn reference_msa_is_valid_and_ungaps_to_reads() {
        let fam = small_family();
        let set = ReadSet::from_family(
            &fam,
            &ReadSimConfig { coverage: 3.0, error_rate: 0.03, seed: 4, ..Default::default() },
        );
        let msa = set.reference_msa();
        msa.validate().unwrap();
        assert_eq!(msa.num_rows(), set.len());
        for i in 0..set.len() {
            assert_eq!(msa.ungapped(i), set.reads[i], "read {i}");
        }
    }

    #[test]
    fn true_pair_matches_dense_reference() {
        let fam = small_family();
        let set = ReadSet::from_family(
            &fam,
            &ReadSimConfig {
                total_reads: Some(40),
                error_rate: 0.02,
                seed: 8,
                ..Default::default()
            },
        );
        let msa = set.reference_msa();
        for (i, j) in [(0usize, 1usize), (3, 17), (5, 35)] {
            let (ra, rb) = set.true_pair(i, j);
            // Scoring the dense reference rows against the sparse pairwise
            // projection must be a perfect match wherever they overlap.
            if set.overlap(i, j) > 0 {
                let q = q_score_pair(msa.row(i), msa.row(j), &ra, &rb);
                assert_eq!(q, Some(1.0), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn reads_from_same_region_overlap_in_truth() {
        let fam = small_family();
        let set = ReadSet::from_family(
            &fam,
            &ReadSimConfig { coverage: 10.0, seed: 3, ..Default::default() },
        );
        let overlapping = (1..set.len()).filter(|&j| set.overlap(0, j) > 10).count();
        assert!(overlapping > 0, "10x coverage must create overlapping reads");
    }

    #[test]
    fn errors_perturb_reads() {
        let fam = small_family();
        let clean = ReadSet::from_family(
            &fam,
            &ReadSimConfig { error_rate: 0.0, seed: 7, ..Default::default() },
        );
        let noisy = ReadSet::from_family(
            &fam,
            &ReadSimConfig { error_rate: 0.08, seed: 7, ..Default::default() },
        );
        assert_eq!(clean.len(), noisy.len());
        assert_ne!(clean.reads, noisy.reads, "8% error rate must change reads");
        // Overcalled residues mint sub-columns: some truth key has a
        // nonzero sub part.
        let minted = noisy.truth.iter().flatten().any(|k| k & ((1 << SUB_BITS) - 1) != 0);
        assert!(minted, "overcalls should mint sub-columns");
    }

    #[test]
    fn ids_are_unique_and_prefixed() {
        let fam = small_family();
        let set = ReadSet::from_family(
            &fam,
            &ReadSimConfig { total_reads: Some(25), id_prefix: "r7_".into(), ..Default::default() },
        );
        assert!(set.reads.iter().all(|r| r.id.starts_with("r7_")));
        let uniq: std::collections::HashSet<&str> =
            set.reads.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(uniq.len(), 25);
    }
}
