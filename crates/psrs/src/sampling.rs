//! Regular sampling and pivot selection (shared by the distributed and
//! shared-memory sorters).

use bioseq::Work;

/// The `n log₂ n` comparison work of one sort pass, zero below two items.
/// Every sorter in the workspace (distributed PSRS, the shared-memory
/// partitioner, the pipeline backends) charges this one formula so the
/// unified per-phase reports stay comparable across substrates.
pub fn sort_work(n: usize) -> Work {
    if n > 1 {
        Work::sort((n as f64 * (n as f64).log2()).ceil() as u64)
    } else {
        Work::ZERO
    }
}

/// Choose `k` evenly spaced sample keys from a **sorted** slice (regular
/// sampling). Returns fewer than `k` samples when the slice is shorter
/// than `k`.
pub fn regular_samples(sorted_keys: &[f64], k: usize) -> Vec<f64> {
    let n = sorted_keys.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    // Sample at positions (i+1)·n/(k+1): interior, evenly spaced.
    (0..k)
        .map(|i| {
            let idx = ((i + 1) * n) / (k + 1);
            sorted_keys[idx.min(n - 1)]
        })
        .collect()
}

/// Select `p − 1` pivots from the gathered sample (unsorted input; sorted
/// internally). Matches the paper's rule of taking every `p`-th element of
/// the sorted sample offset by `p/2` when the sample has the canonical
/// `p(p−1)` size, and degrades gracefully for other sizes.
pub fn select_pivots(mut samples: Vec<f64>, p: usize) -> Vec<f64> {
    assert!(p >= 1, "need at least one partition");
    if p == 1 || samples.is_empty() {
        return Vec::new();
    }
    samples.sort_by(f64::total_cmp);
    let m = samples.len();
    (1..p)
        .map(|i| {
            // Position i·m/p shifted half a stride back: the paper's
            // Y_{p/2 + (i−1)p} for m = p(p−1).
            let idx = (i * m) / p;
            let idx = idx.saturating_sub(m / (2 * p)).min(m - 1);
            samples[idx]
        })
        .collect()
}

/// Partition items into `pivots.len() + 1` buckets by key: bucket `i`
/// receives keys in `(pivots[i−1], pivots[i]]`-ish ranges (keys ≤
/// `pivots[0]` go to bucket 0, keys > last pivot to the last bucket).
/// `pivots` must be sorted.
pub fn bucket_of(key: f64, pivots: &[f64]) -> usize {
    // Binary search for the first pivot >= key.
    let mut lo = 0usize;
    let mut hi = pivots.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if key <= pivots[mid] {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Shi & Schaeffer's load bound: with regular sampling over `n` items and
/// `p` partitions (all keys distinct), no partition exceeds `2·n/p` items.
/// Returns that bound (callers assert their observed maximum against it,
/// with slack for duplicate keys).
pub fn max_partition_bound(n: usize, p: usize) -> usize {
    if p == 0 {
        return n;
    }
    2 * n.div_ceil(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_samples_even_spacing() {
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = regular_samples(&keys, 3);
        assert_eq!(s, vec![25.0, 50.0, 75.0]);
    }

    #[test]
    fn regular_samples_short_input() {
        let keys = [1.0, 2.0];
        assert_eq!(regular_samples(&keys, 5).len(), 2);
        assert!(regular_samples(&[], 3).is_empty());
        assert!(regular_samples(&keys, 0).is_empty());
    }

    #[test]
    fn pivots_split_uniform_range_evenly() {
        let samples: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let pivots = select_pivots(samples, 4);
        assert_eq!(pivots.len(), 3);
        // Roughly at 1/4, 2/4, 3/4 of the range.
        assert!((pivots[0] - 30.0).abs() <= 16.0, "{pivots:?}");
        assert!((pivots[1] - 60.0).abs() <= 16.0, "{pivots:?}");
        assert!((pivots[2] - 90.0).abs() <= 16.0, "{pivots:?}");
        // Sorted.
        assert!(pivots.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pivots_trivial_cases() {
        assert!(select_pivots(vec![1.0, 2.0], 1).is_empty());
        assert!(select_pivots(vec![], 4).is_empty());
        let one = select_pivots(vec![5.0], 3);
        assert_eq!(one.len(), 2);
        assert!(one.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn bucket_of_boundaries() {
        let pivots = [10.0, 20.0, 30.0];
        assert_eq!(bucket_of(5.0, &pivots), 0);
        assert_eq!(bucket_of(10.0, &pivots), 0); // <= pivot goes left
        assert_eq!(bucket_of(10.5, &pivots), 1);
        assert_eq!(bucket_of(20.0, &pivots), 1);
        assert_eq!(bucket_of(30.0, &pivots), 2);
        assert_eq!(bucket_of(31.0, &pivots), 3);
        assert_eq!(bucket_of(7.0, &[]), 0);
    }

    #[test]
    fn bucket_of_is_monotone() {
        let pivots = [1.0, 2.0, 3.0, 4.0];
        let mut prev = 0;
        for i in 0..60 {
            let k = i as f64 * 0.1;
            let b = bucket_of(k, &pivots);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn bound_is_twice_share() {
        assert_eq!(max_partition_bound(1000, 4), 500);
        assert_eq!(max_partition_bound(10, 3), 8);
        assert_eq!(max_partition_bound(5, 0), 5);
    }
}
