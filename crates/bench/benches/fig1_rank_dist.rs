//! Fig. 1 — distribution of k-mer ranks for 500 sequences, centralized vs
//! globalized.
//!
//! Regenerates the figure's two histograms (ASCII + CSV). The paper's
//! qualitative claims to check: both distributions have similar shape and
//! range, with the globalized average sitting *above* the centralized one.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, rose_workload, table};
use sad_core::{rank_experiment, SadConfig};

fn experiment() {
    banner("Fig. 1", "k-mer rank distribution, centralized vs globalized (N=500)");
    let seqs = rose_workload(500, 0xF161);
    let cfg = SadConfig::default();
    let exp = rank_experiment(&seqs, 8, &cfg);

    let all: Vec<f64> = exp.centralized.iter().chain(&exp.globalized).copied().collect();
    let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1e-9;
    let bins = 20;
    let hc = bioseq::stats::Histogram::build(&exp.centralized, lo, hi, bins);
    let hg = bioseq::stats::Histogram::build(&exp.globalized, lo, hi, bins);

    println!("\ncentralized ranks:");
    print!("{}", hc.ascii(40));
    println!("\nglobalized ranks:");
    print!("{}", hg.ascii(40));

    let rows: Vec<Vec<String>> = (0..bins)
        .map(|i| {
            vec![format!("{:.4}", hc.center(i)), hc.counts[i].to_string(), hg.counts[i].to_string()]
        })
        .collect();
    table(&["rank_bin", "centralized", "globalized"], &rows);

    let sc = bioseq::stats::Summary::of(&exp.centralized).unwrap();
    let sg = bioseq::stats::Summary::of(&exp.globalized).unwrap();
    println!("\ncentralized: {sc}");
    println!("globalized:  {sg}");
    println!(
        "paper check — globalized mean > centralized mean: {}",
        if sg.mean > sc.mean { "REPRODUCED" } else { "NOT reproduced" }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    // Criterion measurement: the rank computation kernel at small size.
    let seqs = rose_workload(96, 0xF162);
    let cfg = SadConfig::default();
    c.bench_function("fig1/rank_experiment_n96_p8", |b| {
        b.iter(|| rank_experiment(std::hint::black_box(&seqs), 8, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
