//! Quickstart: align a synthetic protein family with Sample-Align-D and
//! inspect quality against the known true alignment.
//!
//! Run with: `cargo run --release --example quickstart`

use sample_align_d::prelude::*;

fn main() {
    // 1. Generate a family of 24 homologous sequences with a known true
    //    alignment (the rose model the paper uses for its experiments).
    let family = Family::generate(&FamilyConfig {
        n_seqs: 24,
        avg_len: 120,
        relatedness: 600.0,
        seed: 42,
        ..Default::default()
    });
    println!(
        "generated {} sequences, avg length {:.0}, true avg identity {:.2}",
        family.seqs.len(),
        family.seqs.iter().map(|s| s.len() as f64).sum::<f64>() / family.seqs.len() as f64,
        family.reference.average_identity()
    );

    // 2. Align on a virtual 4-node Beowulf cluster through the builder.
    let cfg = SadConfig::default();
    let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
    let report = Aligner::new(cfg.clone())
        .backend(Backend::Distributed(cluster))
        .run(&family.seqs)
        .expect("valid input");

    println!("\nalignment snapshot (first rows/columns):");
    print!("{}", report.msa.snapshot(10, 72));

    // 3. Quality and performance.
    let matrix = SubstMatrix::blosum62();
    let gaps = GapPenalties::default();
    println!("SP score: {}", report.msa.sp_score(&matrix, gaps));
    if let Some(q) = bioseq::compare::q_score_msa(&report.msa, &family.reference) {
        println!("Q vs true alignment: {q:.3}");
    }
    println!(
        "\nvirtual makespan: {:.3}s on {} ranks",
        report.makespan().expect("distributed runs have a makespan"),
        report.ranks
    );
    println!("bucket sizes: {:?}", report.bucket_sizes);
    println!("\nper-phase report (the paper's Section 3 steps):");
    print!("{}", report.phase_table());

    // 4. The same pipeline on the rayon shared-memory backend — only the
    //    Backend argument changes, the report type does not.
    let shared = Aligner::new(cfg)
        .backend(Backend::Rayon { threads: 4 })
        .run(&family.seqs)
        .expect("valid input");
    println!("\nrayon backend agrees with the cluster backend: {}", shared.msa == report.msa);

    // 5. Round-trip the result through FASTA.
    let fasta_text = fasta::write_alignment(&report.msa);
    let parsed = fasta::parse_alignment(&fasta_text).expect("roundtrip");
    assert_eq!(parsed.num_rows(), report.msa.num_rows());
    println!("FASTA round-trip OK ({} bytes)", fasta_text.len());
}
