//! The `sad` binary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    match sad_cli::args::parse(refs) {
        Ok(args) => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if let Err(e) = sad_cli::run(args, &mut lock) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
