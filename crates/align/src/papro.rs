//! Profile–profile alignment: the engine of progressive MSA and of the
//! paper's ancestor-constrained fine-tuning.
//!
//! An affine-gap DP over *columns* (not residues) maximising the summed PSP
//! score. Gap penalties are scaled by the residue weight of the column
//! being consumed and the total weight of the profile receiving the gap, so
//! the objective stays in (weighted) sum-of-pairs units end to end.

use crate::dp::{self, BandPolicy, DpArena, DpKernel, PspScorer};
use crate::profile::Profile;
use bioseq::alphabet::GAP_CODE;
use bioseq::{GapPenalties, Msa, SubstMatrix, Work};

// The merge-script op lives in the kernel now; re-exported here because
// this is where every consumer historically imported it from.
pub use crate::dp::ColOp;

/// Result of a profile–profile alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileAlignment {
    /// Column merge script (length = merged alignment width).
    pub ops: Vec<ColOp>,
    /// DP objective value (weighted SP units).
    pub score: f64,
    /// Work performed.
    pub work: Work,
}

/// Align two profiles with affine gap penalties (full DP).
pub fn align_profiles(
    pa: &Profile,
    pb: &Profile,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
) -> ProfileAlignment {
    align_profiles_with(pa, pb, matrix, gaps, BandPolicy::Full, &mut DpArena::new())
}

/// Align two profiles under an explicit [`BandPolicy`], reusing the
/// caller's [`DpArena`] so the progressive/refinement loops allocate no
/// DP scratch in steady state.
pub fn align_profiles_with(
    pa: &Profile,
    pb: &Profile,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    arena: &mut DpArena,
) -> ProfileAlignment {
    align_profiles_with_kernel(pa, pb, matrix, gaps, policy, DpKernel::Auto, arena)
}

/// [`align_profiles_with`] with an explicit [`DpKernel`] choice (the
/// default `Auto` picks the striped fill whenever the PSP arithmetic is
/// provably f32-exact — uniform integral weights).
pub fn align_profiles_with_kernel(
    pa: &Profile,
    pb: &Profile,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
) -> ProfileAlignment {
    assert!(!pa.is_empty() && !pb.is_empty(), "profiles must be non-empty");
    let mut work = Work::ZERO;
    let scorer = PspScorer::new(pa, pb, matrix, gaps, &mut work);
    let out = dp::gotoh_global_with(&scorer, policy, kernel, arena);
    work += out.work();
    ProfileAlignment { ops: out.ops, score: out.score, work }
}

/// Apply a column merge script to two alignments, producing the merged
/// alignment (rows of `a` first).
///
/// # Panics
/// Panics if the script does not consume exactly the columns of `a` and
/// `b`.
pub fn merge_msas(a: &Msa, b: &Msa, ops: &[ColOp], work: &mut Work) -> Msa {
    let out_cols = ops.len();
    let ra = a.num_rows();
    let rb = b.num_rows();
    let mut rows: Vec<Vec<u8>> = (0..ra + rb).map(|_| Vec::with_capacity(out_cols)).collect();
    let (mut ia, mut ib) = (0usize, 0usize);
    for &op in ops {
        match op {
            ColOp::Both => {
                for (r, row) in rows.iter_mut().enumerate().take(ra) {
                    row.push(a.row(r)[ia]);
                }
                for (r, row) in rows.iter_mut().enumerate().skip(ra) {
                    row.push(b.row(r - ra)[ib]);
                }
                ia += 1;
                ib += 1;
            }
            ColOp::FromA => {
                for (r, row) in rows.iter_mut().enumerate().take(ra) {
                    row.push(a.row(r)[ia]);
                }
                for row in rows.iter_mut().skip(ra) {
                    row.push(GAP_CODE);
                }
                ia += 1;
            }
            ColOp::FromB => {
                for row in rows.iter_mut().take(ra) {
                    row.push(GAP_CODE);
                }
                for (r, row) in rows.iter_mut().enumerate().skip(ra) {
                    row.push(b.row(r - ra)[ib]);
                }
                ib += 1;
            }
        }
    }
    assert_eq!(ia, a.num_cols(), "script must consume all of a");
    assert_eq!(ib, b.num_cols(), "script must consume all of b");
    work.col_ops += (out_cols * (ra + rb)) as u64;
    let mut ids = a.ids().to_vec();
    ids.extend_from_slice(b.ids());
    Msa::from_rows(ids, rows)
}

/// Convenience: profile-align two alignments with uniform weights and merge
/// them (full DP).
pub fn align_and_merge(
    a: &Msa,
    b: &Msa,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    work: &mut Work,
) -> Msa {
    align_and_merge_with(a, b, matrix, gaps, BandPolicy::Full, &mut DpArena::new(), work)
}

/// [`align_and_merge`] under an explicit band policy, reusing the caller's
/// [`DpArena`].
pub fn align_and_merge_with(
    a: &Msa,
    b: &Msa,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    arena: &mut DpArena,
    work: &mut Work,
) -> Msa {
    align_and_merge_with_kernel(a, b, matrix, gaps, policy, DpKernel::Auto, arena, work)
}

/// [`align_and_merge_with`] with an explicit [`DpKernel`] choice.
#[allow(clippy::too_many_arguments)]
pub fn align_and_merge_with_kernel(
    a: &Msa,
    b: &Msa,
    matrix: &SubstMatrix,
    gaps: GapPenalties,
    policy: BandPolicy,
    kernel: DpKernel,
    arena: &mut DpArena,
    work: &mut Work,
) -> Msa {
    let pa = Profile::from_msa(a, work);
    let pb = Profile::from_msa(b, work);
    let aln = align_profiles_with_kernel(&pa, &pb, matrix, gaps, policy, kernel, arena);
    *work += aln.work;
    merge_msas(a, b, &aln.ops, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::BandPolicy;
    use bioseq::fasta;
    use bioseq::Sequence;

    fn msa(text: &str) -> Msa {
        fasta::parse_alignment(text).unwrap()
    }

    fn setup() -> (SubstMatrix, GapPenalties) {
        (SubstMatrix::blosum62(), GapPenalties::default())
    }

    #[test]
    fn identical_profiles_align_diagonally() {
        let (mat, g) = setup();
        let a = msa(">a\nMKVLAW\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&a, &mut w);
        let aln = align_profiles(&pa, &pa, &mat, g);
        assert!(aln.ops.iter().all(|&op| op == ColOp::Both));
        assert_eq!(aln.ops.len(), 6);
    }

    #[test]
    fn merge_preserves_ungapped_rows() {
        let (mat, g) = setup();
        let a = msa(">a\nMKVLAW\n>b\nMKV-AW\n");
        let b = msa(">c\nMKAW\n");
        let mut w = Work::ZERO;
        let merged = align_and_merge(&a, &b, &mat, g, &mut w);
        assert_eq!(merged.num_rows(), 3);
        merged.validate().unwrap();
        assert_eq!(merged.ungapped(0).to_letters(), "MKVLAW");
        assert_eq!(merged.ungapped(1).to_letters(), "MKVAW");
        assert_eq!(merged.ungapped(2).to_letters(), "MKAW");
        assert!(w.dp_cells > 0);
    }

    #[test]
    fn merged_ids_in_order() {
        let (mat, g) = setup();
        let a = msa(">x\nMKVL\n");
        let b = msa(">y\nMKIL\n>z\nMKIL\n");
        let mut w = Work::ZERO;
        let merged = align_and_merge(&a, &b, &mat, g, &mut w);
        assert_eq!(merged.ids(), &["x".to_string(), "y".to_string(), "z".to_string()]);
    }

    #[test]
    fn dp_score_matches_rescoring_pairwise_case() {
        // For single-sequence profiles the profile DP must agree with a
        // rescoring of the produced alignment (PSP == pair score, weights 1).
        let (mat, g) = setup();
        let texts = [("MKVLAWGKVL", "MKILWGKIL"), ("AAAAW", "WAAA"), ("MW", "M")];
        for (ta, tb) in texts {
            let a = Msa::from_sequence(&Sequence::from_str("a", ta).unwrap());
            let b = Msa::from_sequence(&Sequence::from_str("b", tb).unwrap());
            let mut w = Work::ZERO;
            let merged = align_and_merge(&a, &b, &mat, g, &mut w);
            let pa = Profile::from_msa(&a, &mut w);
            let pb = Profile::from_msa(&b, &mut w);
            let aln = align_profiles(&pa, &pb, &mat, g);
            let rescored = bioseq::msa::pairwise_row_score(merged.row(0), merged.row(1), &mat, g);
            assert!(
                (aln.score - rescored as f64).abs() < 1e-6,
                "{ta} vs {tb}: dp={} rescored={rescored}",
                aln.score
            );
        }
    }

    #[test]
    fn profile_alignment_matches_pairwise_alignment_score() {
        // Single-sequence profile alignment is exactly pairwise Gotoh.
        let (mat, g) = setup();
        let a = Sequence::from_str("a", "MKVLAWGKVLPP").unwrap();
        let b = Sequence::from_str("b", "MKILWGKILGG").unwrap();
        let pairwise = crate::pairwise::global_align(&a, &b, &mat, g);
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&Msa::from_sequence(&a), &mut w);
        let pb = Profile::from_msa(&Msa::from_sequence(&b), &mut w);
        let profile = align_profiles(&pa, &pb, &mat, g);
        assert!(
            (profile.score - pairwise.score as f64).abs() < 1e-6,
            "profile {} vs pairwise {}",
            profile.score,
            pairwise.score
        );
    }

    #[test]
    fn gap_columns_inserted_where_cheaper() {
        let (mat, g) = setup();
        let a = msa(">a\nMKVVVVKW\n");
        let b = msa(">b\nMKKW\n");
        let mut w = Work::ZERO;
        let merged = align_and_merge(&a, &b, &mat, g, &mut w);
        // The short sequence must receive gap columns.
        assert!(merged.row(1).contains(&GAP_CODE));
        assert_eq!(merged.num_cols(), 8);
    }

    #[test]
    #[should_panic(expected = "consume all")]
    fn bad_script_panics() {
        let a = msa(">a\nMK\n");
        let b = msa(">b\nMK\n");
        let mut w = Work::ZERO;
        merge_msas(&a, &b, &[ColOp::Both], &mut w);
    }

    #[test]
    fn banded_profile_alignment_matches_full() {
        let (mat, g) = setup();
        let a = msa(">a\nMKVLAWGKVLMMPQRS\n>b\nMKILAWKILMMPQ-RS\n");
        let b = msa(">c\nMKVLWGKVLMMPQS\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa(&a, &mut w);
        let pb = Profile::from_msa(&b, &mut w);
        let full = align_profiles(&pa, &pb, &mat, g);
        let mut arena = crate::dp::DpArena::new();
        let auto = align_profiles_with(&pa, &pb, &mat, g, BandPolicy::Auto, &mut arena);
        assert_eq!(auto.ops, full.ops);
        assert!((auto.score - full.score).abs() < 1e-12);
    }

    #[test]
    fn weighted_profiles_shift_alignment() {
        // Weighting the gappy row heavily should change gap placement
        // economics but never break structure.
        let (mat, g) = setup();
        let a = msa(">a\nMKVLAW\n>b\nMK--AW\n");
        let b = msa(">c\nMKVLAW\n");
        let mut w = Work::ZERO;
        let pa = Profile::from_msa_weighted(&a, &[1.0, 10.0], &mut w);
        let pb = Profile::from_msa(&b, &mut w);
        let aln = align_profiles(&pa, &pb, &mat, g);
        let merged = merge_msas(&a, &b, &aln.ops, &mut w);
        merged.validate().unwrap();
        assert_eq!(merged.ungapped(2).to_letters(), "MKVLAW");
    }
}
