//! Arena-allocated rooted binary trees with branch lengths.

use serde::{Deserialize, Serialize};

/// Index of a node within a [`Tree`] arena.
pub type NodeId = usize;

/// One node of a rooted binary tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children, `None` for leaves. Trees are strictly binary.
    pub children: Option<(NodeId, NodeId)>,
    /// For leaves: the index of the item (e.g. sequence) this leaf stands
    /// for.
    pub leaf: Option<usize>,
    /// Length of the edge connecting this node to its parent (0 for the
    /// root).
    pub branch_len: f64,
    /// Ultrametric height (UPGMA) or cumulative depth proxy; 0 for leaves.
    pub height: f64,
}

/// A rooted, strictly binary phylogenetic tree over `n` leaves.
///
/// Invariants: exactly `n` leaves carrying leaf indices `0..n` (each exactly
/// once) and `n − 1` internal nodes; every internal node has exactly two
/// children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
    n_leaves: usize,
}

impl Tree {
    /// A single-leaf tree (leaf index 0).
    pub fn singleton() -> Tree {
        Tree {
            nodes: vec![Node {
                parent: None,
                children: None,
                leaf: Some(0),
                branch_len: 0.0,
                height: 0.0,
            }],
            root: 0,
            n_leaves: 1,
        }
    }

    /// Build a tree from a merge script over `n` leaves.
    ///
    /// `merges` lists, in order, pairs of node ids to join; leaf `i` has id
    /// `i`, and the `m`-th merge creates node id `n + m`. Heights give the
    /// height of each created internal node; branch lengths are derived as
    /// `parent.height − child.height`.
    ///
    /// # Panics
    /// Panics on malformed scripts (wrong counts, reused nodes).
    pub fn from_merges(n: usize, merges: &[(NodeId, NodeId, f64)]) -> Tree {
        assert!(n >= 1, "need at least one leaf");
        assert_eq!(merges.len(), n - 1, "binary tree needs n-1 merges");
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| Node {
                parent: None,
                children: None,
                leaf: Some(i),
                branch_len: 0.0,
                height: 0.0,
            })
            .collect();
        for (m, &(a, b, height)) in merges.iter().enumerate() {
            let id = n + m;
            assert!(a < id && b < id && a != b, "merge {m} references bad nodes");
            assert!(nodes[a].parent.is_none(), "node {a} already merged");
            assert!(nodes[b].parent.is_none(), "node {b} already merged");
            nodes.push(Node {
                parent: None,
                children: Some((a, b)),
                leaf: None,
                branch_len: 0.0,
                height,
            });
            nodes[a].parent = Some(id);
            nodes[b].parent = Some(id);
            let (ha, hb) = (nodes[a].height, nodes[b].height);
            nodes[a].branch_len = (height - ha).max(0.0);
            nodes[b].branch_len = (height - hb).max(0.0);
        }
        let root = nodes.len() - 1;
        assert!(nodes[root].parent.is_none());
        Tree { nodes, root, n_leaves: n }
    }

    /// Direct arena access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable access to branch length (used by generators that rescale).
    pub fn set_branch_len(&mut self, id: NodeId, len: f64) {
        self.nodes[id].branch_len = len;
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Total number of nodes (`2n − 1`).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Ids of all nodes in post order (children before parents).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded || self.nodes[id].children.is_none() {
                order.push(id);
            } else {
                stack.push((id, true));
                let (a, b) = self.nodes[id].children.expect("checked");
                stack.push((b, false));
                stack.push((a, false));
            }
        }
        order
    }

    /// Leaf item indices under `id`, in traversal order.
    pub fn leaves_under(&self, id: NodeId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            match self.nodes[cur].children {
                Some((a, b)) => {
                    stack.push(b);
                    stack.push(a);
                }
                None => out.push(self.nodes[cur].leaf.expect("leaf has index")),
            }
        }
        out
    }

    /// All leaf item indices in traversal order (a permutation of `0..n`).
    pub fn leaf_order(&self) -> Vec<usize> {
        self.leaves_under(self.root)
    }

    /// The bipartitions induced by removing each internal edge: for every
    /// non-root node `v` with at least 2 leaves on the smaller side, yields
    /// `(leaves under v, the complement)`.
    pub fn bipartitions(&self) -> Vec<(Vec<usize>, Vec<usize>)> {
        let all: Vec<usize> = self.leaf_order();
        let mut out = Vec::new();
        for id in 0..self.nodes.len() {
            if id == self.root {
                continue;
            }
            let inside = self.leaves_under(id);
            if inside.is_empty() || inside.len() == all.len() {
                continue;
            }
            let inside_set: std::collections::HashSet<usize> = inside.iter().copied().collect();
            let outside: Vec<usize> =
                all.iter().copied().filter(|l| !inside_set.contains(l)).collect();
            out.push((inside, outside));
        }
        out
    }

    /// Sum of branch lengths on the path between two *node* ids.
    pub fn path_length(&self, a: NodeId, b: NodeId) -> f64 {
        // Walk both up to the root recording cumulative distances, then
        // find the deepest common ancestor.
        let up = |mut id: NodeId| {
            let mut path = vec![(id, 0.0)];
            let mut acc = 0.0;
            while let Some(p) = self.nodes[id].parent {
                acc += self.nodes[id].branch_len;
                path.push((p, acc));
                id = p;
            }
            path
        };
        let pa = up(a);
        let pb = up(b);
        let set: std::collections::HashMap<NodeId, f64> = pa.iter().copied().collect();
        for &(id, db) in &pb {
            if let Some(&da) = set.get(&id) {
                return da + db;
            }
        }
        unreachable!("two nodes of one tree always share the root");
    }

    /// Leaf node id (arena id) for a given leaf item index.
    pub fn leaf_node(&self, leaf: usize) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.leaf == Some(leaf))
    }

    /// Validate the structural invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut leaf_seen = vec![false; self.n_leaves];
        let mut child_count = vec![0usize; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            match (node.children, node.leaf) {
                (Some((a, b)), None) => {
                    for c in [a, b] {
                        if self.nodes[c].parent != Some(id) {
                            return Err(format!("child {c} of {id} has wrong parent"));
                        }
                        child_count[c] += 1;
                    }
                }
                (None, Some(leaf)) => {
                    if leaf >= self.n_leaves {
                        return Err(format!("leaf index {leaf} out of range"));
                    }
                    if leaf_seen[leaf] {
                        return Err(format!("duplicate leaf index {leaf}"));
                    }
                    leaf_seen[leaf] = true;
                }
                _ => return Err(format!("node {id} is neither leaf nor internal")),
            }
            if node.branch_len < 0.0 {
                return Err(format!("node {id} has negative branch length"));
            }
        }
        if !leaf_seen.iter().all(|&s| s) {
            return Err("missing leaf indices".into());
        }
        if child_count.iter().enumerate().any(|(id, &c)| c > 1 && id != self.root) {
            return Err("node with multiple parents".into());
        }
        if self.nodes[self.root].parent.is_some() {
            return Err("root has a parent".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Balanced 4-leaf tree: ((0,1),(2,3)).
    fn sample_tree() -> Tree {
        Tree::from_merges(4, &[(0, 1, 1.0), (2, 3, 2.0), (4, 5, 3.0)])
    }

    #[test]
    fn construction_and_validation() {
        let t = sample_tree();
        assert_eq!(t.n_leaves(), 4);
        assert_eq!(t.n_nodes(), 7);
        t.validate().unwrap();
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = sample_tree();
        let order = t.postorder();
        assert_eq!(order.len(), 7);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for (id, node) in (0..t.n_nodes()).map(|i| (i, t.node(i))) {
            if let Some((a, b)) = node.children {
                assert!(pos(a) < pos(id));
                assert!(pos(b) < pos(id));
            }
        }
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    fn leaves_under_internal_nodes() {
        let t = sample_tree();
        assert_eq!(t.leaves_under(4), vec![0, 1]);
        assert_eq!(t.leaves_under(5), vec![2, 3]);
        assert_eq!(t.leaf_order(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn branch_lengths_from_heights() {
        let t = sample_tree();
        // leaf 0 under node 4 (height 1.0): branch 1.0
        assert_eq!(t.node(0).branch_len, 1.0);
        // node 4 under root (height 3.0): 3.0 - 1.0 = 2.0
        assert_eq!(t.node(4).branch_len, 2.0);
        // node 5: 3.0 - 2.0 = 1.0
        assert_eq!(t.node(5).branch_len, 1.0);
    }

    #[test]
    fn path_length_is_ultrametric_for_upgma_style_trees() {
        let t = sample_tree();
        // Dist between leaf 0 and leaf 1 = 1 + 1 = 2 (two branches of 1.0).
        assert!((t.path_length(0, 1) - 2.0).abs() < 1e-12);
        // Leaf 0 to leaf 2: 1 + 2 + 1 + 2 = 6.
        assert!((t.path_length(0, 2) - 6.0).abs() < 1e-12);
        // Symmetry.
        assert_eq!(t.path_length(0, 3), t.path_length(3, 0));
    }

    #[test]
    fn bipartitions_cover_internal_edges() {
        let t = sample_tree();
        let bps = t.bipartitions();
        // 4 leaf edges + 2 internal edges (root excluded) = 6 bipartitions
        // but single-leaf sides are included (refinement uses them too).
        assert_eq!(bps.len(), 6);
        for (inside, outside) in &bps {
            assert_eq!(inside.len() + outside.len(), 4);
        }
        assert!(bps.iter().any(|(i, _)| *i == vec![0, 1]));
    }

    #[test]
    fn singleton_is_valid() {
        let t = Tree::singleton();
        t.validate().unwrap();
        assert_eq!(t.leaf_order(), vec![0]);
        assert_eq!(t.postorder(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "already merged")]
    fn reusing_node_panics() {
        Tree::from_merges(3, &[(0, 1, 1.0), (0, 2, 2.0)]);
    }

    #[test]
    fn leaf_node_lookup() {
        let t = sample_tree();
        assert_eq!(t.leaf_node(2), Some(2));
        assert_eq!(t.leaf_node(99), None);
    }
}
