//! The first-class pipeline layer shared by every backend.
//!
//! The paper tells its speedup story phase by phase — sampling, ranking,
//! redistribution, bucket alignment, ancestor merge — so the run API makes
//! those phases first-class values instead of magic strings:
//!
//! * [`Phase`] — typed ids for the Section 2 pipeline steps;
//! * [`PipelineCtx`] — the one phase recorder every backend threads
//!   through its run: it times each phase in real wall-clock seconds,
//!   accumulates the per-phase [`Work`], emits [`Event`]s to an optional
//!   [`Observer`], and checks a shareable [`CancelToken`] (plus an
//!   optional deadline) at phase boundaries;
//! * [`Observer`] — the callback trait a caller registers via
//!   [`crate::Aligner::observer`] to watch a run live;
//! * [`CancelToken`] — a cloneable flag that stops a run at the next
//!   phase boundary with [`SadError::Cancelled`].
//!
//! The recorder has two entry styles. Backends driven from one thread
//! (sequential, rayon) wrap each phase in `PipelineCtx::phase`. The
//! message-passing backend is SPMD — every rank walks the same phase
//! sequence on its own thread — so each rank brackets its phases with
//! `PipelineCtx::rank_enter`/`rank_exit`: the phase starts when the first
//! rank enters and finishes when the last rank leaves, which is exactly
//! the phase's wall-clock footprint.

use crate::error::SadError;
use crate::report::PhaseStat;
use bioseq::Work;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed id for one step of the Sample-Align-D pipeline.
///
/// Variants are numbered after the algorithm listing in Section 2 of the
/// paper (step 4 is folded into its preceding collective, and the step-7
/// slot hosts the hierarchical sub-partition pass of the large-N read
/// mode), so [`Phase::step`] and [`Phase::name`] line up with the cost
/// analysis of Section 3. The discriminant order is pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Step 0: vertical decomposition's conserved-anchor scan — colinear
    /// k-mer chaining across all sequences, before any rank/sort work.
    /// Only recorded when [`crate::SadConfig::vertical`] is configured.
    AnchorScan,
    /// Step 1: each rank computes local k-mer ranks for its block.
    LocalKmerRank,
    /// Step 2: each rank sorts its block by local rank.
    LocalSort,
    /// Steps 3–4: regular sampling and the sample all-gather.
    SampleExchange,
    /// Step 5: re-rank every sequence against the pooled global sample.
    GlobalizedRank,
    /// Step 6: PSRS redistribution so similar sequences co-locate.
    Redistribute,
    /// Step 7: hierarchical sub-partitioning — buckets exceeding
    /// [`crate::SadConfig::max_bucket`] are recursively re-sampled and
    /// re-partitioned until every leaf bucket fits the cap. Only recorded
    /// when a cap is configured (the Pyro-Align large-N read mode).
    SubPartition,
    /// Step 8 (vertical mode): each anchor-delimited block aligned as an
    /// independent job on the worker pool. Replaces the whole-length
    /// engine run of [`Phase::LocalAlign`] when vertical decomposition
    /// produced more than one block.
    BlockAlign,
    /// Step 8: the sequential MSA engine on each bucket.
    LocalAlign,
    /// Step 9: consensus ("local ancestor") extraction per bucket.
    LocalAncestor,
    /// Step 10: ancestor alignment into the global ancestor at the root.
    GlobalAncestor,
    /// Step 11: anchor every bucket to the global ancestor.
    FineTune,
    /// Step 12: glue the anchored buckets into one global alignment.
    Glue,
    /// Step 13: MaxAlign-style alignment-area trim of the finished root
    /// alignment — greedy sequence exclusion maximising `retained rows ×
    /// gap-free columns`. Only recorded when [`crate::SadConfig::trim`]
    /// is configured; runs at the root on every backend.
    Trim,
}

impl Phase {
    /// Every phase in pipeline order.
    pub const ALL: [Phase; 14] = [
        Phase::AnchorScan,
        Phase::LocalKmerRank,
        Phase::LocalSort,
        Phase::SampleExchange,
        Phase::GlobalizedRank,
        Phase::Redistribute,
        Phase::SubPartition,
        Phase::BlockAlign,
        Phase::LocalAlign,
        Phase::LocalAncestor,
        Phase::GlobalAncestor,
        Phase::FineTune,
        Phase::Glue,
        Phase::Trim,
    ];

    /// The stable label used in tables, traces and logs (the pre-0.3
    /// magic strings, e.g. `"8-local-align"`).
    pub fn name(self) -> &'static str {
        match self {
            Phase::AnchorScan => "0-anchor-scan",
            Phase::LocalKmerRank => "1-local-kmer-rank",
            Phase::LocalSort => "2-local-sort",
            Phase::SampleExchange => "3-sample-exchange",
            Phase::GlobalizedRank => "5-globalized-rank",
            Phase::Redistribute => "6-redistribute",
            Phase::SubPartition => "7-sub-partition",
            Phase::BlockAlign => "8-block-align",
            Phase::LocalAlign => "8-local-align",
            Phase::LocalAncestor => "9-local-ancestor",
            Phase::GlobalAncestor => "10-global-ancestor",
            Phase::FineTune => "11-fine-tune",
            Phase::Glue => "12-glue",
            Phase::Trim => "13-trim",
        }
    }

    /// The paper's Section 2 step number this phase implements.
    pub fn step(self) -> u8 {
        match self {
            Phase::AnchorScan => 0,
            Phase::LocalKmerRank => 1,
            Phase::LocalSort => 2,
            Phase::SampleExchange => 3,
            Phase::GlobalizedRank => 5,
            Phase::Redistribute => 6,
            Phase::SubPartition => 7,
            Phase::BlockAlign => 8,
            Phase::LocalAlign => 8,
            Phase::LocalAncestor => 9,
            Phase::GlobalAncestor => 10,
            Phase::FineTune => 11,
            Phase::Glue => 12,
            Phase::Trim => 13,
        }
    }

    /// Parse a stable label back into its typed id (the inverse of
    /// [`Phase::name`]).
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One notification about a running pipeline, delivered to an
/// [`Observer`].
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm so
/// future events are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// The run passed validation and is about to execute.
    RunStarted {
        /// Stable backend name (`"sequential"`, `"rayon"`,
        /// `"distributed"`).
        backend: &'static str,
        /// Input size.
        n_seqs: usize,
        /// Decomposition width (ranks/threads; 1 for sequential).
        ranks: usize,
    },
    /// A phase began (on the decomposed backends: the first rank entered
    /// it).
    PhaseStarted {
        /// Which phase.
        phase: Phase,
    },
    /// A phase completed (on the decomposed backends: the last rank left
    /// it).
    PhaseFinished {
        /// Which phase.
        phase: Phase,
        /// Work performed in the phase, summed over ranks/threads.
        work: Work,
        /// Real wall-clock duration of the phase in seconds.
        seconds: f64,
    },
    /// One over-cap bucket was recursively re-partitioned (inside
    /// [`Phase::SubPartition`], hierarchical mode only). Splits of one
    /// first-pass bucket arrive in increasing `depth` order.
    BucketSplit {
        /// First-pass (post-redistribution) bucket the split belongs to.
        bucket: usize,
        /// Recursion depth of this split (1 = first re-partition).
        depth: usize,
        /// Sequences in the bucket before the split.
        size: usize,
        /// Sub-buckets the split produced.
        parts: usize,
    },
    /// One conserved anchor survived chaining (inside
    /// [`Phase::AnchorScan`], vertical mode only). Anchors arrive in
    /// increasing position order.
    AnchorFound {
        /// Index of the anchor along the chain (0-based).
        index: usize,
        /// Start position of the anchor's k-mer in the first sequence.
        ref_pos: usize,
        /// Positional-agreement confidence in `[0, 1]`.
        confidence: f64,
    },
    /// One vertical block finished its alignment (inside
    /// [`Phase::BlockAlign`]). Blocks run on worker threads, so arrival
    /// order between blocks is not deterministic.
    BlockAligned {
        /// Block index along the sequence length (0-based).
        block: usize,
        /// Rows in the block's alignment (= number of input sequences).
        rows: usize,
        /// Columns in the block's alignment.
        cols: usize,
        /// Real wall-clock seconds the block's engine run took.
        seconds: f64,
    },
    /// One bucket finished its local alignment (inside
    /// [`Phase::LocalAlign`]). Decomposed backends emit these from worker
    /// threads, so arrival order between buckets is not deterministic.
    BucketAligned {
        /// Bucket/rank index.
        bucket: usize,
        /// Rows in the bucket's alignment.
        rows: usize,
        /// Real wall-clock seconds the bucket's engine run took.
        seconds: f64,
    },
    /// One row was excluded by the alignment-area trim (inside
    /// [`Phase::Trim`], trim mode only). Rows arrive in drop order.
    SequenceExcluded {
        /// Identifier of the dropped sequence.
        id: String,
        /// Marginal area change from this drop. Negative values can
        /// appear inside a synergy move (the move as a whole gains).
        area_gain: i64,
    },
    /// The run ended, successfully or via cancellation.
    RunFinished {
        /// Real wall-clock seconds since `RunStarted`.
        seconds: f64,
        /// `true` when the run stopped with [`SadError::Cancelled`].
        cancelled: bool,
    },
    /// One batch job is about to run (see [`crate::Aligner::run_batch`]).
    /// The job's own `RunStarted`…`RunFinished` stream nests inside its
    /// `JobStarted`/`JobFinished` pair; jobs on different workers
    /// interleave freely.
    JobStarted {
        /// Position of the job in the submitted batch.
        job: usize,
        /// The job's caller-chosen id.
        id: String,
        /// Input size of the job.
        n_seqs: usize,
    },
    /// One batch job completed — successfully or with a per-job error
    /// (batch jobs never abort their batch).
    JobFinished {
        /// Position of the job in the submitted batch.
        job: usize,
        /// The job's caller-chosen id.
        id: String,
        /// Real wall-clock seconds the job took.
        seconds: f64,
        /// Whether the job produced an alignment (`false` covers both
        /// invalid jobs and cancelled ones).
        ok: bool,
    },
}

/// A callback watching one pipeline run.
///
/// Registered via [`crate::Aligner::observer`]. Implementations must be
/// `Send + Sync` (decomposed backends deliver events from worker threads)
/// and should return quickly — events are delivered synchronously on the
/// pipeline's threads, serialised so they arrive in record order, so a
/// blocking observer (e.g. one writing to a full pipe) stalls rank
/// threads at their phase boundaries. Recorded phase `seconds` stay
/// honest regardless: timestamps are taken before the serialisation
/// point. An observer may call [`CancelToken::cancel`] to stop the run at
/// the next phase boundary; it must not re-enter the aligner.
pub trait Observer: Send + Sync {
    /// Receive one event. Events for a single run arrive in pipeline
    /// order except `BucketAligned`, which may interleave freely inside
    /// its phase.
    fn on_event(&self, event: &Event);
}

/// Every closure observer is an [`Observer`], so ad-hoc observation needs
/// no named type: `Aligner::new(cfg).observer(Arc::new(|e: &Event| ...))`.
impl<F: Fn(&Event) + Send + Sync> Observer for F {
    fn on_event(&self, event: &Event) {
        self(event)
    }
}

/// A cloneable cancellation flag shared between a run and its controller.
///
/// Hand one token to [`crate::Aligner::cancel_token`] and keep a clone;
/// calling [`CancelToken::cancel`] from any thread stops the run at its
/// next phase boundary with [`SadError::Cancelled`]. Cancellation is
/// cooperative and sticky — a cancelled token stays cancelled.
///
/// Tokens compose: [`CancelToken::fused`] builds a token that *observes*
/// several source tokens at once, which is how a batch run combines its
/// batch-wide token with each job's own (see
/// [`crate::Aligner::run_batch`]).
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Flags of fused source tokens this token also observes. Cancelling
    /// this token never propagates upstream.
    upstream: Arc<[Arc<AtomicBool>]>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken { flag: Arc::default(), upstream: Arc::from(Vec::new()) }
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that reads as cancelled when *any* of `sources` is (or it
    /// is cancelled itself). Observation is one-way: cancelling the fused
    /// token leaves every source untouched. The batch runner fuses the
    /// batch-wide token with each job's own so either can stop a job.
    pub fn fused<'a>(sources: impl IntoIterator<Item = &'a CancelToken>) -> CancelToken {
        let mut upstream = Vec::new();
        for source in sources {
            upstream.push(Arc::clone(&source.flag));
            upstream.extend(source.upstream.iter().cloned());
        }
        CancelToken { flag: Arc::default(), upstream: Arc::from(upstream) }
    }

    /// Request cancellation. Idempotent and thread-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested — on this token or on any
    /// token it was [`fused`](CancelToken::fused) over.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || self.upstream.iter().any(|f| f.load(Ordering::SeqCst))
    }
}

/// A phase currently being executed by the SPMD backend.
struct OpenPhase {
    started: Instant,
    work: Work,
    entered: usize,
    exited: usize,
}

/// Recorder state behind the mutex: finished phases plus the SPMD
/// backend's in-flight ones. Events are emitted while this lock is held so
/// observers see them in record order.
#[derive(Default)]
struct Recorder {
    stats: Vec<PhaseStat>,
    open: Vec<(Phase, OpenPhase)>,
}

/// The shared phase recorder threaded through every backend's pipeline.
///
/// One `PipelineCtx` lives for one [`crate::Aligner::run`]: it owns the
/// run's observer, cancellation token and deadline, stamps every phase
/// with real wall-clock seconds, and yields the final [`PhaseStat`] list
/// for the [`crate::RunReport`].
pub struct PipelineCtx {
    backend: &'static str,
    ranks: usize,
    observer: Option<Arc<dyn Observer>>,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    started: Instant,
    inner: Mutex<Recorder>,
}

impl std::fmt::Debug for PipelineCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineCtx")
            .field("backend", &self.backend)
            .field("ranks", &self.ranks)
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl PipelineCtx {
    /// A recorder for one run. `budget` is the optional wall-clock
    /// deadline measured from now (see [`crate::Aligner::deadline`]).
    pub(crate) fn new(
        backend: &'static str,
        ranks: usize,
        observer: Option<Arc<dyn Observer>>,
        cancel: Option<CancelToken>,
        budget: Option<Duration>,
    ) -> Self {
        let started = Instant::now();
        PipelineCtx {
            backend,
            ranks,
            observer,
            cancel,
            deadline: budget.map(|d| started + d),
            started,
            inner: Mutex::new(Recorder::default()),
        }
    }

    fn emit(&self, event: Event) {
        if let Some(obs) = &self.observer {
            obs.on_event(&event);
        }
    }

    /// Emit [`Event::RunStarted`]. Called once by the aligner after
    /// validation.
    pub(crate) fn run_started(&self, n_seqs: usize) {
        self.emit(Event::RunStarted { backend: self.backend, n_seqs, ranks: self.ranks });
    }

    /// Emit [`Event::RunFinished`]. Called once by the aligner when the
    /// pipeline returns.
    pub(crate) fn run_finished(&self, cancelled: bool) {
        self.emit(Event::RunFinished { seconds: self.started.elapsed().as_secs_f64(), cancelled });
    }

    /// Whether the run should stop: the token was cancelled or the
    /// deadline has passed. The SPMD backend's root rank polls this and
    /// broadcasts the verdict so every rank stops at the same boundary.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The phase-boundary check: `Err(SadError::Cancelled)` naming the
    /// phase that was about to start if the run should stop.
    pub(crate) fn check(&self, phase: Phase) -> Result<(), SadError> {
        if self.cancel_requested() {
            Err(SadError::Cancelled { phase })
        } else {
            Ok(())
        }
    }

    /// Run `f` as one pipeline phase on the coordinating thread: check
    /// cancellation, emit [`Event::PhaseStarted`], time the closure, record
    /// the [`PhaseStat`] (with the `Work` the closure reports), emit
    /// [`Event::PhaseFinished`].
    pub(crate) fn phase<R>(
        &self,
        phase: Phase,
        f: impl FnOnce() -> (R, Work),
    ) -> Result<R, SadError> {
        self.check(phase)?;
        self.emit(Event::PhaseStarted { phase });
        let t0 = Instant::now();
        let (result, work) = f();
        let seconds = t0.elapsed().as_secs_f64();
        let mut inner = self.inner.lock().expect("pipeline recorder poisoned");
        inner.stats.push(PhaseStat { phase, work, seconds: Some(seconds), virtual_seconds: None });
        drop(inner);
        self.emit(Event::PhaseFinished { phase, work, seconds });
        Ok(result)
    }

    /// SPMD entry: one rank enters `phase`. The first rank to enter stamps
    /// the phase's wall-clock start and emits [`Event::PhaseStarted`].
    pub(crate) fn rank_enter(&self, phase: Phase) {
        // Stamped before taking the lock, so waiting behind another rank's
        // bookkeeping (or its observer callback) never counts as phase time.
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("pipeline recorder poisoned");
        if let Some((_, open)) = inner.open.iter_mut().find(|(p, _)| *p == phase) {
            open.entered += 1;
            return;
        }
        inner
            .open
            .push((phase, OpenPhase { started: now, work: Work::ZERO, entered: 1, exited: 0 }));
        // Emitted under the lock so observers see phases in entry order.
        self.emit(Event::PhaseStarted { phase });
    }

    /// SPMD exit: one rank leaves `phase`, contributing its share of the
    /// phase's work. The last rank to leave closes the phase: its
    /// wall-clock footprint is first-enter → last-exit, its work the sum
    /// over ranks.
    pub(crate) fn rank_exit(&self, phase: Phase, work: Work) {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("pipeline recorder poisoned");
        let idx = inner
            .open
            .iter()
            .position(|(p, _)| *p == phase)
            .unwrap_or_else(|| panic!("rank_exit({phase}) without rank_enter"));
        let open = &mut inner.open[idx].1;
        open.work += work;
        open.exited += 1;
        if open.exited < self.ranks {
            return;
        }
        debug_assert_eq!(open.entered, self.ranks, "{phase}: exits outran enters");
        let seconds = now.duration_since(open.started).as_secs_f64();
        let work = open.work;
        inner.open.remove(idx);
        inner.stats.push(PhaseStat { phase, work, seconds: Some(seconds), virtual_seconds: None });
        self.emit(Event::PhaseFinished { phase, work, seconds });
    }

    /// Emit [`Event::BucketAligned`]. Safe to call from worker threads
    /// inside [`Phase::LocalAlign`].
    pub(crate) fn bucket_aligned(&self, bucket: usize, rows: usize, seconds: f64) {
        self.emit(Event::BucketAligned { bucket, rows, seconds });
    }

    /// Emit [`Event::BucketSplit`] (inside [`Phase::SubPartition`]).
    pub(crate) fn bucket_split(&self, bucket: usize, depth: usize, size: usize, parts: usize) {
        self.emit(Event::BucketSplit { bucket, depth, size, parts });
    }

    /// Emit [`Event::AnchorFound`] (inside [`Phase::AnchorScan`]).
    pub(crate) fn anchor_found(&self, index: usize, ref_pos: usize, confidence: f64) {
        self.emit(Event::AnchorFound { index, ref_pos, confidence });
    }

    /// Emit [`Event::BlockAligned`]. Safe to call from worker threads
    /// inside [`Phase::BlockAlign`].
    pub(crate) fn block_aligned(&self, block: usize, rows: usize, cols: usize, seconds: f64) {
        self.emit(Event::BlockAligned { block, rows, cols, seconds });
    }

    /// Emit [`Event::SequenceExcluded`] (inside [`Phase::Trim`]).
    pub(crate) fn sequence_excluded(&self, id: String, area_gain: i64) {
        self.emit(Event::SequenceExcluded { id, area_gain });
    }

    /// Close the recorder: the finished phases in pipeline order plus
    /// their summed work (the report invariant `work == Σ phase work`).
    ///
    /// # Panics
    /// Panics if an SPMD phase is still open — every `rank_enter` needs a
    /// matching `rank_exit` on every rank.
    pub(crate) fn drain(&self) -> (Vec<PhaseStat>, Work) {
        let mut inner = self.inner.lock().expect("pipeline recorder poisoned");
        assert!(inner.open.is_empty(), "pipeline drained with phases still open");
        let stats = std::mem::take(&mut inner.stats);
        let work = stats.iter().map(|s| s.work).sum();
        (stats, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(events: &Arc<Mutex<Vec<Event>>>) -> Vec<Event> {
        events.lock().unwrap().clone()
    }

    fn recording_ctx(ranks: usize) -> (PipelineCtx, Arc<Mutex<Vec<Event>>>) {
        let events: Arc<Mutex<Vec<Event>>> = Arc::default();
        let sink = Arc::clone(&events);
        let obs = move |e: &Event| sink.lock().unwrap().push(e.clone());
        (PipelineCtx::new("test", ranks, Some(Arc::new(obs)), None, None), events)
    }

    #[test]
    fn phase_names_and_steps_roundtrip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
            assert!(phase.name().starts_with(&phase.step().to_string()));
            assert_eq!(format!("{phase}"), phase.name());
        }
        assert_eq!(Phase::from_name("7-mystery"), None);
        // ALL is in pipeline order.
        let mut sorted = Phase::ALL;
        sorted.sort();
        assert_eq!(sorted, Phase::ALL);
    }

    #[test]
    fn scoped_phase_records_work_and_wall_seconds() {
        let (ctx, events) = recording_ctx(1);
        let out = ctx.phase(Phase::LocalAlign, || (7usize, Work::dp(10))).unwrap();
        assert_eq!(out, 7);
        let (stats, total) = ctx.drain();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].phase, Phase::LocalAlign);
        assert_eq!(total, Work::dp(10));
        assert!(stats[0].seconds.unwrap() >= 0.0);
        let evs = collect(&events);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], Event::PhaseStarted { phase: Phase::LocalAlign });
        assert!(matches!(evs[1], Event::PhaseFinished { phase: Phase::LocalAlign, .. }));
    }

    #[test]
    fn rank_mode_opens_on_first_enter_and_closes_on_last_exit() {
        let (ctx, events) = recording_ctx(3);
        ctx.rank_enter(Phase::LocalSort);
        ctx.rank_enter(Phase::LocalSort);
        ctx.rank_exit(Phase::LocalSort, Work::sort(5));
        assert!(collect(&events).len() == 1, "still open after 1 of 3 exits");
        ctx.rank_enter(Phase::LocalSort);
        ctx.rank_exit(Phase::LocalSort, Work::sort(5));
        ctx.rank_exit(Phase::LocalSort, Work::sort(5));
        let (stats, total) = ctx.drain();
        assert_eq!(stats.len(), 1);
        assert_eq!(total, Work::sort(15), "work sums over ranks");
        let evs = collect(&events);
        assert!(matches!(evs.last(), Some(Event::PhaseFinished { work, .. }) if *work == total));
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn drain_rejects_open_phases() {
        let (ctx, _) = recording_ctx(2);
        ctx.rank_enter(Phase::Glue);
        let _ = ctx.drain();
    }

    #[test]
    fn cancel_token_stops_the_next_phase() {
        let token = CancelToken::new();
        let ctx = PipelineCtx::new("test", 1, None, Some(token.clone()), None);
        assert_eq!(ctx.phase(Phase::LocalKmerRank, || ((), Work::ZERO)), Ok(()));
        token.cancel();
        assert!(token.is_cancelled());
        let res = ctx.phase(Phase::LocalSort, || ((), Work::ZERO));
        assert_eq!(res, Err(SadError::Cancelled { phase: Phase::LocalSort }));
        // The cancelled phase was never recorded.
        assert_eq!(ctx.drain().0.len(), 1);
    }

    #[test]
    fn fused_tokens_observe_every_source_one_way() {
        let batch = CancelToken::new();
        let job = CancelToken::new();
        let fused = CancelToken::fused([&batch, &job]);
        assert!(!fused.is_cancelled());
        batch.cancel();
        assert!(fused.is_cancelled(), "fused token sees the batch-wide source");
        let fused2 = CancelToken::fused([&CancelToken::new(), &job]);
        job.cancel();
        assert!(fused2.is_cancelled(), "fused token sees the per-job source");
        // One-way: cancelling a fused token leaves its sources untouched.
        let source = CancelToken::new();
        let derived = CancelToken::fused([&source]);
        derived.cancel();
        assert!(derived.is_cancelled() && !source.is_cancelled());
        // Fusing is transitive through already-fused tokens.
        let chained = CancelToken::fused([&fused]);
        assert!(chained.is_cancelled(), "batch flag visible through two fuse layers");
    }

    #[test]
    fn deadline_is_a_cancellation_source() {
        let ctx = PipelineCtx::new("test", 1, None, None, Some(Duration::ZERO));
        assert!(ctx.cancel_requested());
        assert_eq!(
            ctx.check(Phase::LocalAlign),
            Err(SadError::Cancelled { phase: Phase::LocalAlign })
        );
        let lax = PipelineCtx::new("test", 1, None, None, Some(Duration::from_secs(3600)));
        assert!(!lax.cancel_requested());
    }

    #[test]
    fn run_events_carry_metadata() {
        let (ctx, events) = recording_ctx(4);
        ctx.run_started(99);
        ctx.bucket_aligned(2, 25, 0.5);
        ctx.run_finished(true);
        let evs = collect(&events);
        assert_eq!(evs[0], Event::RunStarted { backend: "test", n_seqs: 99, ranks: 4 });
        assert_eq!(evs[1], Event::BucketAligned { bucket: 2, rows: 25, seconds: 0.5 });
        assert!(matches!(evs[2], Event::RunFinished { cancelled: true, .. }));
    }
}
