//! A rank's endpoint: local virtual clock, point-to-point messaging and
//! work accounting.

use crate::cost::CostModel;
use crate::trace::{PhaseRecord, RankTrace};
use crate::wire::WireSize;
use bioseq::Work;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::cell::{Cell, RefCell};

/// A typed message envelope with virtual-time metadata.
pub(crate) struct Envelope {
    /// Sender's virtual clock when the last payload byte left its NIC.
    pub depart: f64,
    /// Payload size used for cost accounting.
    pub bytes: usize,
    /// Message tag; receives assert tag agreement to catch protocol bugs.
    pub tag: u64,
    /// The payload itself (never serialised — same process).
    pub payload: Box<dyn Any + Send>,
}

/// One rank of the virtual cluster.
///
/// All methods take `&self`; per-rank state lives in `Cell`/`RefCell`
/// because a `Node` is owned by exactly one thread.
pub struct Node {
    rank: usize,
    size: usize,
    cost: CostModel,
    clock: Cell<f64>,
    compute_s: Cell<f64>,
    comm_s: Cell<f64>,
    bytes_sent: Cell<u64>,
    msgs_sent: Cell<u64>,
    msgs_received: Cell<u64>,
    phases: RefCell<Vec<PhaseRecord>>,
    open_phases: RefCell<Vec<(String, f64)>>,
    pub(crate) coll_seq: Cell<u64>,
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Envelope>>,
}

impl Node {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        cost: CostModel,
        senders: Vec<Sender<Envelope>>,
        receivers: Vec<Receiver<Envelope>>,
    ) -> Self {
        debug_assert_eq!(senders.len(), size);
        debug_assert_eq!(receivers.len(), size);
        Node {
            rank,
            size,
            cost,
            clock: Cell::new(0.0),
            compute_s: Cell::new(0.0),
            comm_s: Cell::new(0.0),
            bytes_sent: Cell::new(0),
            msgs_sent: Cell::new(0),
            msgs_received: Cell::new(0),
            phases: RefCell::new(Vec::new()),
            open_phases: RefCell::new(Vec::new()),
            coll_seq: Cell::new(0),
            senders,
            receivers,
        }
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual clock in seconds.
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock.get()
    }

    /// The cost model in force.
    #[inline]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Advance the clock by modelled *computation* seconds.
    pub fn advance(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "time cannot run backwards");
        self.clock.set(self.clock.get() + seconds);
        self.compute_s.set(self.compute_s.get() + seconds);
    }

    /// Charge a unit of abstract work against the clock.
    pub fn compute(&self, work: Work) {
        self.advance(self.cost.work_seconds(&work));
    }

    fn advance_comm(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock.set(self.clock.get() + seconds);
        self.comm_s.set(self.comm_s.get() + seconds);
    }

    /// Send `msg` to `dst` with `tag`.
    ///
    /// The sender's clock advances by the send overhead plus the wire time
    /// of the payload; the message then needs one network latency to
    /// arrive (modelled on the receive side).
    pub fn send<M: WireSize + Send + 'static>(&self, dst: usize, tag: u64, msg: M) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let bytes = msg.wire_bytes();
        self.advance_comm(self.cost.send_seconds(bytes));
        let env = Envelope { depart: self.clock.get(), bytes, tag, payload: Box::new(msg) };
        self.bytes_sent.set(self.bytes_sent.get() + bytes as u64);
        self.msgs_sent.set(self.msgs_sent.get() + 1);
        self.senders[dst].send(env).expect("peer rank hung up");
    }

    /// Receive the next message from `src`, asserting it carries `tag`.
    ///
    /// Blocks (in real time) until the peer thread has sent; in virtual
    /// time, the receiver's clock jumps to the message arrival time if the
    /// message was still in flight, then pays the receive overhead.
    ///
    /// # Panics
    /// Panics when the next message from `src` carries a different tag —
    /// this always indicates an SPMD protocol bug.
    pub fn recv<M: WireSize + Send + 'static>(&self, src: usize, tag: u64) -> M {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let env = self.receivers[src].recv().expect("peer rank hung up");
        assert_eq!(
            env.tag, tag,
            "rank {}: tag mismatch receiving from {src} (got {}, want {tag})",
            self.rank, env.tag
        );
        let arrival = env.depart + self.cost.latency;
        let now = self.clock.get();
        let wait = (arrival - now).max(0.0);
        self.advance_comm(wait + self.cost.recv_overhead);
        self.msgs_received.set(self.msgs_received.get() + 1);
        let _ = env.bytes;
        *env.payload.downcast::<M>().unwrap_or_else(|_| {
            panic!("rank {}: type mismatch receiving tag {tag} from {src}", self.rank)
        })
    }

    /// Begin a named phase (phases may nest).
    pub fn phase_start(&self, name: &str) {
        self.open_phases.borrow_mut().push((name.to_string(), self.clock.get()));
    }

    /// End the innermost open phase.
    ///
    /// # Panics
    /// Panics if no phase is open.
    pub fn phase_end(&self) {
        let (name, start) =
            self.open_phases.borrow_mut().pop().expect("phase_end without phase_start");
        self.phases.borrow_mut().push(PhaseRecord { name, start, end: self.clock.get() });
    }

    /// Run `f` inside a named phase.
    pub fn phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.phase_start(name);
        let out = f();
        self.phase_end();
        out
    }

    /// Finalise this rank's trace (called by the cluster runner).
    pub(crate) fn finish(self) -> RankTrace {
        assert!(
            self.open_phases.borrow().is_empty(),
            "rank {} finished with unclosed phases",
            self.rank
        );
        RankTrace {
            rank: self.rank,
            compute_s: self.compute_s.get(),
            comm_s: self.comm_s.get(),
            bytes_sent: self.bytes_sent.get(),
            msgs_sent: self.msgs_sent.get(),
            msgs_received: self.msgs_received.get(),
            phases: self.phases.into_inner(),
            final_clock: self.clock.get(),
        }
    }
}
