//! Throughput of the `sad serve` daemon: 16 distinct families submitted
//! over one client connection, timed from worker release to queue drain,
//! at 1, 4, and 8 workers.
//!
//! Each run uses a fresh harness (fresh journal, empty result cache) so
//! every job does real DP work — resubmitting the same family would be
//! answered from the cache and measure nothing. Besides the criterion
//! timings, the bench writes `BENCH_serve_throughput.json` at the
//! workspace root so the perf trajectory has a committed baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_serve::{ServeHarness, Submitted};
use std::path::Path;
use std::time::{Duration, Instant};

// Jobs sized so DP dominates the per-job fixed costs (journal flush,
// socket round-trips) — small enough to keep the bench quick, big
// enough that added workers actually show.
const N_JOBS: usize = 16;
const N_SEQS: usize = 24;
const AVG_LEN: usize = 150;
const SAMPLES: usize = 3;

fn families() -> Vec<String> {
    (0..N_JOBS)
        .map(|i| {
            let family = rosegen::Family::generate(&rosegen::FamilyConfig {
                n_seqs: N_SEQS,
                avg_len: AVG_LEN,
                relatedness: 700.0,
                seed: 0x5e57e + i as u64,
                id_prefix: format!("fam{i}-"),
                ..Default::default()
            });
            bioseq::fasta::write(&family.seqs)
        })
        .collect()
}

/// One full serve run: stage all jobs behind paused workers, then time
/// release → drain. Returns the drain wall time in seconds.
fn run_once(workers: usize, jobs: &[String]) -> f64 {
    let mut h =
        ServeHarness::new(&format!("bench-w{workers}")).workers(workers).paused(true).start();
    let mut client = h.client();
    for (i, fasta) in jobs.iter().enumerate() {
        match client.submit(Some(&format!("job-{i}")), 0, fasta).expect("submit") {
            Submitted::Accepted { .. } => {}
            Submitted::Rejected { reason } => panic!("job-{i} rejected: {reason}"),
        }
    }
    let start = Instant::now();
    h.release_workers();
    assert!(h.server().wait_idle(Duration::from_secs(120)), "drain");
    let seconds = start.elapsed().as_secs_f64();
    let stats = h.shutdown();
    assert_eq!(stats.completed, N_JOBS);
    assert_eq!(stats.cache_hits, 0, "distinct families, no cache shortcuts");
    seconds
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn bench(c: &mut Criterion) {
    let jobs = families();
    let mut rows = Vec::new();
    for workers in [1usize, 4, 8] {
        c.bench_function(&format!("serve/throughput_{N_JOBS}_jobs_w{workers}"), |b| {
            b.iter(|| run_once(workers, &jobs))
        });
        let secs = median((0..SAMPLES).map(|_| run_once(workers, &jobs)).collect());
        let jobs_per_sec = N_JOBS as f64 / secs;
        println!("serve throughput: {workers} workers → {jobs_per_sec:.1} jobs/s");
        rows.push(format!(
            "    {{\"workers\": {workers}, \"seconds_median\": {secs:.6}, \
             \"jobs_per_sec\": {jobs_per_sec:.2}}}"
        ));
    }

    // Worker counts above the host's core count can't scale; record the
    // core count so the baseline is interpretable on other machines.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"jobs\": {N_JOBS},\n  \
         \"n_seqs\": {N_SEQS},\n  \"avg_len\": {AVG_LEN},\n  \"samples\": {SAMPLES},\n  \
         \"host_cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve_throughput.json");
    std::fs::write(&path, json).expect("write BENCH_serve_throughput.json");
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
