//! Fig. 5 — speedup vs number of processors (the paper reports
//! super-linear speedup, strongest for the largest input).
//!
//! Speedup here is `T(1) / T(p)` over the virtual cluster, exactly the
//! quantity the paper plots. Super-linearity comes from the `O(w²·L)`
//! k-mer distance term inside the sequential engine: bucketing divides the
//! quadratic work by `p²`, not `p` — the effect grows with N, matching
//! the paper's observation that the 20000-sequence curve is the cleanest.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, rose_workload, sad_makespan, sad_on_cluster, scaled, table, PAPER_PROCS};
use sad_core::SadConfig;

fn experiment() {
    let sizes: Vec<usize> = [5000, 10000, 20000].iter().map(|&n| scaled(n)).collect();
    banner("Fig. 5", &format!("speedup vs processors, N = {sizes:?} (paper: 5000/10000/20000)"));
    let cfg = SadConfig::default();
    let mut rows = Vec::new();
    let mut headline = (0usize, 0.0f64); // (largest N, speedup at p=16)
    for (i, &n) in sizes.iter().enumerate() {
        let seqs = rose_workload(n, 0xF165 + i as u64);
        let mut times = Vec::new();
        for &p in &PAPER_PROCS {
            times.push(sad_makespan(p, &seqs, &cfg));
        }
        let t1 = times[0];
        let mut row = vec![n.to_string()];
        for (j, &p) in PAPER_PROCS.iter().enumerate() {
            let s = t1 / times[j];
            row.push(format!("{s:.2}"));
            if p == 16 {
                headline = (n, s);
            }
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("N".to_string())
        .chain(PAPER_PROCS.iter().map(|p| format!("speedup(p={p})")))
        .collect();
    let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
    table(&hrefs, &rows);

    println!(
        "\nlargest input N={}: speedup at p=16 is {:.2} (paper: super-linear, up to ~45)",
        headline.0, headline.1
    );
    println!(
        "paper check — super-linear speedup at the largest N: {}",
        if headline.1 > 16.0 {
            "REPRODUCED (speedup > p)"
        } else if headline.1 > 12.0 {
            "PARTIAL (near-linear at this scaled size; run SAD_PAPER_SCALE=1)"
        } else {
            "NOT reproduced"
        }
    );
    // Monotone growth of speedup with N at p=16.
    let s_small: f64 = rows[0].last().unwrap().parse().unwrap();
    let s_large: f64 = rows[2].last().unwrap().parse().unwrap();
    println!(
        "paper check — larger inputs scale better: {}",
        if s_large >= s_small { "REPRODUCED" } else { "NOT reproduced" }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let seqs = rose_workload(96, 0xF1655);
    let cfg = SadConfig::default();
    c.bench_function("fig5/sad_n96_p16", |b| {
        b.iter(|| sad_on_cluster(16, std::hint::black_box(&seqs), &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
