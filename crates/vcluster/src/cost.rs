//! The deterministic cost model converting abstract work and message sizes
//! into virtual seconds.

use bioseq::Work;
use serde::{Deserialize, Serialize};

/// Conversion rates from work units and wire bytes to virtual seconds.
///
/// Presets model the paper's 2008 Beowulf node (550 MHz Pentium III,
/// gigabit Ethernet) and a modern core, but every coefficient is public so
/// experiments can recalibrate or ablate (e.g. zero communication cost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One-way message latency in seconds (per message, any size).
    pub latency: f64,
    /// Seconds per payload byte on the wire (1 / bandwidth).
    pub per_byte: f64,
    /// CPU seconds consumed by posting a send.
    pub send_overhead: f64,
    /// CPU seconds consumed by completing a receive.
    pub recv_overhead: f64,
    /// Seconds per dynamic-programming cell.
    pub dp_cell: f64,
    /// Seconds per k-mer merge step.
    pub kmer_op: f64,
    /// Seconds per sorting comparison.
    pub sort_op: f64,
    /// Seconds per guide-tree construction step.
    pub tree_op: f64,
    /// Seconds per alignment-column operation.
    pub col_op: f64,
    /// Seconds per bulk sequence byte touched.
    pub seq_byte: f64,
}

impl CostModel {
    /// The paper's testbed: 550 MHz Pentium III nodes (≈ 10 M affine DP
    /// cells/s, ≈ 30 M light ops/s) on gigabit Ethernet (125 MB/s, ≈ 100 µs
    /// latency under Linux 2.4).
    pub fn beowulf_2008() -> Self {
        CostModel {
            latency: 1.0e-4,
            per_byte: 8.0e-9,
            send_overhead: 2.0e-5,
            recv_overhead: 2.0e-5,
            dp_cell: 1.0e-7,
            kmer_op: 3.0e-8,
            sort_op: 4.0e-8,
            tree_op: 4.0e-8,
            col_op: 3.0e-8,
            seq_byte: 2.0e-9,
        }
    }

    /// A modern core with a modern interconnect — used to show the
    /// algorithm's scaling is not an artefact of 2008 constants.
    pub fn modern() -> Self {
        CostModel {
            latency: 2.0e-6,
            per_byte: 1.0e-10,
            send_overhead: 5.0e-7,
            recv_overhead: 5.0e-7,
            dp_cell: 2.0e-9,
            kmer_op: 8.0e-10,
            sort_op: 1.0e-9,
            tree_op: 1.0e-9,
            col_op: 8.0e-10,
            seq_byte: 6.0e-11,
        }
    }

    /// Beowulf compute rates with a free network (communication ablation).
    pub fn free_network() -> Self {
        CostModel {
            latency: 0.0,
            per_byte: 0.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            ..Self::beowulf_2008()
        }
    }

    /// Virtual seconds for a unit of [`Work`].
    pub fn work_seconds(&self, w: &Work) -> f64 {
        w.dp_cells as f64 * self.dp_cell
            + w.kmer_ops as f64 * self.kmer_op
            + w.sort_ops as f64 * self.sort_op
            + w.tree_ops as f64 * self.tree_op
            + w.col_ops as f64 * self.col_op
            + w.seq_bytes as f64 * self.seq_byte
    }

    /// Wire time for a message payload of `bytes` charged to the sender
    /// (serialisation onto the NIC).
    pub fn send_seconds(&self, bytes: usize) -> f64 {
        self.send_overhead + bytes as f64 * self.per_byte
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::beowulf_2008()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_seconds_linear() {
        let m = CostModel::beowulf_2008();
        let w = Work::dp(10);
        assert!((m.work_seconds(&w) - 10.0 * m.dp_cell).abs() < 1e-18);
        let w2 = w + Work::kmer(5);
        assert!((m.work_seconds(&w2) - (10.0 * m.dp_cell + 5.0 * m.kmer_op)).abs() < 1e-18);
    }

    #[test]
    fn zero_work_costs_nothing() {
        assert_eq!(CostModel::modern().work_seconds(&Work::ZERO), 0.0);
    }

    #[test]
    fn free_network_only_zeroes_comm() {
        let m = CostModel::free_network();
        assert_eq!(m.latency, 0.0);
        assert_eq!(m.per_byte, 0.0);
        assert!(m.dp_cell > 0.0);
        assert_eq!(m.send_seconds(1 << 20), 0.0);
    }

    #[test]
    fn beowulf_slower_than_modern() {
        let b = CostModel::beowulf_2008();
        let m = CostModel::modern();
        let w = Work::dp(1_000_000);
        assert!(b.work_seconds(&w) > m.work_seconds(&w));
    }

    #[test]
    fn send_seconds_scale_with_bytes() {
        let m = CostModel::beowulf_2008();
        assert!(m.send_seconds(2000) > m.send_seconds(1000));
        // A 1 MB message at 125 MB/s takes ~8 ms.
        let t = m.send_seconds(1_000_000);
        assert!((t - (m.send_overhead + 8.0e-3)).abs() < 1e-6, "t={t}");
    }
}
