//! Random ultrametric phylogenies (Kingman coalescent shape).

use crate::rng::exponential;
use phylo::Tree;
use rand::Rng;

/// Generate a random ultrametric binary tree over `n` leaves whose root
/// height is exactly `height`. Leaf-to-leaf path lengths therefore range
/// up to `2·height` (expected substitutions per site when used with the
/// mutation model).
///
/// # Panics
/// Panics if `n == 0` or `height < 0`.
pub fn random_ultrametric_tree<R: Rng>(rng: &mut R, n: usize, height: f64) -> Tree {
    assert!(n >= 1, "need at least one leaf");
    assert!(height >= 0.0, "height must be non-negative");
    if n == 1 {
        return Tree::singleton();
    }
    // Kingman coalescent: with k active lineages, the next merge happens
    // after Exp(k(k−1)/2) time.
    let mut active: Vec<usize> = (0..n).collect();
    let mut h = 0.0f64;
    let mut merges: Vec<(usize, usize, f64)> = Vec::with_capacity(n - 1);
    let mut next_id = n;
    while active.len() > 1 {
        let k = active.len() as f64;
        h += exponential(rng, k * (k - 1.0) / 2.0);
        let i = rng.gen_range(0..active.len());
        let a = active.swap_remove(i);
        let j = rng.gen_range(0..active.len());
        let b = active.swap_remove(j);
        merges.push((a, b, h));
        active.push(next_id);
        next_id += 1;
    }
    // Rescale heights so the root sits exactly at `height`.
    let root_h = merges.last().expect("n >= 2").2;
    let scale = if root_h > 0.0 { height / root_h } else { 0.0 };
    for m in merges.iter_mut() {
        m.2 *= scale;
    }
    let tree = Tree::from_merges(n, &merges);
    debug_assert!(tree.validate().is_ok());
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn structure_valid_for_various_sizes() {
        let mut r = rng(5);
        for n in [1, 2, 3, 10, 64, 257] {
            let t = random_ultrametric_tree(&mut r, n, 1.0);
            t.validate().unwrap();
            assert_eq!(t.n_leaves(), n);
        }
    }

    #[test]
    fn root_height_exact() {
        let mut r = rng(6);
        let t = random_ultrametric_tree(&mut r, 20, 0.7);
        assert!((t.node(t.root()).height - 0.7).abs() < 1e-12);
    }

    #[test]
    fn ultrametric_leaves_equidistant_from_root() {
        let mut r = rng(7);
        let t = random_ultrametric_tree(&mut r, 16, 0.5);
        // Every leaf's root-path length equals the root height.
        for leaf in 0..16 {
            let mut id = t.leaf_node(leaf).unwrap();
            let mut depth = 0.0;
            while let Some(p) = t.node(id).parent {
                depth += t.node(id).branch_len;
                id = p;
            }
            assert!((depth - 0.5).abs() < 1e-9, "leaf {leaf}: {depth}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let a = random_ultrametric_tree(&mut rng(1), 12, 1.0);
        let b = random_ultrametric_tree(&mut rng(1), 12, 1.0);
        let c = random_ultrametric_tree(&mut rng(2), 12, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_height_collapses_branches() {
        let t = random_ultrametric_tree(&mut rng(3), 5, 0.0);
        t.validate().unwrap();
        for id in 0..t.n_nodes() {
            assert_eq!(t.node(id).branch_len, 0.0);
        }
    }
}
