//! Golden-file snapshots of the CLI's report rendering: the `sad align`
//! phase table and the `sad batch` summary table are pinned against
//! committed fixtures, so a report-format regression fails the default
//! test tier instead of shipping silently.
//!
//! Wall-clock readings differ between runs, so every float token is
//! normalized to `<t>` before comparison; everything else — layout,
//! headers, integer work/DP counters, sequence bodies, error renderings —
//! is compared verbatim. Goldens are stored pre-normalized. To bless a
//! deliberate format change, rerun with `BLESS=1`:
//!
//! ```text
//! BLESS=1 cargo test --test golden
//! ```

use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Run the CLI in-process, capturing stdout; returns the captured text
/// and the command's result.
fn run_cli(argv: &[&str]) -> (String, Result<(), String>) {
    let args = sad_cli::args::parse(argv.iter().copied()).expect("golden argv parses");
    let mut buf = Vec::new();
    let result = sad_cli::run(args, &mut buf);
    (String::from_utf8(buf).expect("CLI output is UTF-8"), result)
}

/// Replace every whitespace-separated token that reads as a float
/// (trailing `,`/`;` tolerated) with `<t>`, collapsing runs of spaces —
/// wall-clock and throughput readings vary per run, the rest of the
/// report must not.
fn normalize(out: &str) -> String {
    let mut lines: Vec<String> = out
        .lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    let trimmed = tok.trim_end_matches([',', ';']);
                    if trimmed.contains('.') && trimmed.parse::<f64>().is_ok() {
                        tok.replace(trimmed, "<t>")
                    } else {
                        tok.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    lines.push(String::new()); // trailing newline
    lines.join("\n")
}

/// Compare normalized CLI output against a committed golden file,
/// rewriting the golden under `BLESS=1`.
fn assert_matches_golden(name: &str, actual_raw: &str) {
    let actual = normalize(actual_raw);
    let path = golden_dir().join(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} (run with BLESS=1 to create): {e}"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot.\n\
         If the format change is intentional, bless it: BLESS=1 cargo test --test golden"
    );
}

#[test]
fn align_phase_table_matches_golden() {
    // The distributed backend pins the most: phase table with work units,
    // banded/full DP cells, virtual makespan line and the FASTA body.
    let input = golden_dir().join("fixtures/fam_a.fa");
    let (out, result) = run_cli(&["align", input.to_str().unwrap(), "--p", "2"]);
    result.expect("golden align succeeds");
    assert_matches_golden("align_distributed.txt", &out);
}

#[test]
fn align_sequential_table_matches_golden() {
    let input = golden_dir().join("fixtures/fam_b.fa");
    let (out, result) = run_cli(&["align", input.to_str().unwrap(), "--backend", "sequential"]);
    result.expect("golden align succeeds");
    assert_matches_golden("align_sequential.txt", &out);
}

#[test]
fn batch_summary_table_matches_golden() {
    // The committed manifest mixes two healthy families with a
    // one-sequence file, pinning both the success rows and the per-job
    // error rendering. One worker keeps the run order deterministic;
    // the command exits with the failure count, which is part of the
    // contract.
    let manifest = golden_dir().join("batch.manifest");
    let out_dir = std::env::temp_dir().join(format!("sad-golden-batch-{}", std::process::id()));
    let (out, result) = run_cli(&[
        "batch",
        manifest.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert_eq!(result.unwrap_err(), "1 of 3 jobs failed");
    assert_matches_golden("batch_summary.txt", &out);
    // The healthy jobs wrote their alignments next to the summary.
    for name in ["fam_a", "fam_b"] {
        assert!(out_dir.join(format!("{name}.aligned.fa")).exists(), "{name}");
    }
    assert!(!out_dir.join("solo.aligned.fa").exists());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn normalizer_touches_only_float_tokens() {
    let sample =
        "; 8-local-align 123 456/789 0.0042 1.5000\ntotal 99 jobs, 1.25 jobs/s;\n>seq0\nMKVL.AW\n";
    let got = normalize(sample);
    assert_eq!(
        got, "; 8-local-align 123 456/789 <t> <t>\ntotal 99 jobs, <t> jobs/s;\n>seq0\nMKVL.AW\n",
        "integers, ids and non-numeric dotted tokens must survive"
    );
}
