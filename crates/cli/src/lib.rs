//! # sad-cli — command-line interface for the Sample-Align-D system
//!
//! Subcommands:
//!
//! * `sad align <in.fasta>` — align a FASTA file, write gapped FASTA plus
//!   the unified per-phase report to stdout
//!   (`--backend sequential|rayon|distributed`, `--p`, `--threads`,
//!   `--nodes`, `--engine`, `--no-fine-tune`, `--kmer`, and `--progress`
//!   for a live per-phase display on stderr);
//! * `sad batch <dir|manifest>` — align many families in one process:
//!   one job per FASTA file, scheduled over `--jobs N` workers, one
//!   `<job>.aligned.fa` per job in `--out DIR`, and the batch summary
//!   table on stdout (per-job failures are reported, never abort the
//!   batch);
//! * `sad reads` — the Pyro-Align-style large-N read mode: align a file
//!   of short reads (streamed record by record, never slurped) or a
//!   simulated read set, recursively decomposing buckets past
//!   `--max-bucket` on the rayon backend; prints the bucket census,
//!   decomposition depth and phase table, gates simulated runs on mean
//!   pair-Q with `--min-q`, and writes the alignment via `--out`;
//! * `sad trim <aligned.fa>` — MaxAlign-style alignment-area
//!   optimization over an existing aligned FASTA: drop the sequences
//!   whose exclusion grows `retained rows × gap-free columns`
//!   (`--max-dropped N`, `--branch-bound`, `--out FILE`); the same stage
//!   runs inside `sad align`/`sad batch`/`sad reads` via `--trim`;
//! * `sad generate` — emit a rose-style synthetic family as FASTA
//!   (`--n`, `--len`, `--relatedness`, `--seed`, `--reference <path>`);
//! * `sad scaling` — print a Fig. 4/5-style scaling table (`--n`,
//!   `--procs 1,4,8,16`);
//! * `sad eval` — PREFAB-like quality table (`--cases`, `--p`);
//! * `sad rank <in.fasta>` — print per-sequence k-mer ranks
//!   (centralized and globalized);
//! * `sad serve` — run the journaled alignment daemon: TCP job
//!   submission, write-ahead journal with crash recovery, result cache,
//!   drain on SIGTERM or client `SHUTDOWN` (`--host`, `--port`,
//!   `--journal`, `--out`, `--workers`, `--queue`, plus the per-job
//!   pipeline flags of `sad batch`);
//! * `sad submit <files...>` — send FASTA files to a running server and
//!   stream back results (`--host`, `--port`, `--out`, `--priority`,
//!   `--cancel ID`, `--shutdown`).
//!
//! Argument parsing is hand-rolled (no external CLI dependency) and lives
//! in [`args`]; command implementations live in [`cmd`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod cmd;
pub mod progress;

pub use args::{Args, Command, ParseError};

/// Run the CLI against parsed arguments, writing human output to `out`.
pub fn run(args: Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    match args.command {
        Command::Align(a) => cmd::align(a, out),
        Command::Batch(b) => cmd::batch(b, out),
        Command::Reads(r) => cmd::reads(r, out),
        Command::Trim(t) => cmd::trim(t, out),
        Command::Generate(g) => cmd::generate(g, out),
        Command::Scaling(s) => cmd::scaling(s, out),
        Command::Eval(e) => cmd::eval(e, out),
        Command::Rank(r) => cmd::rank(r, out),
        Command::Serve(s) => cmd::serve(s, out),
        Command::Submit(s) => cmd::submit(s, out),
    }
}
