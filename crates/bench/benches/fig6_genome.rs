//! Fig. 6 — execution time on 2000 randomly selected genome sequences
//! (M. acetivorans analogue, average length ≈ 316) for varying processor
//! counts, against sequential MUSCLE on one node.
//!
//! The paper: sequential MUSCLE (with refinement) takes ~23 h on a 384 MB
//! node; Sample-Align-D on 16 nodes takes 9.82 min — a 142× speedup. We
//! run the same comparison with the refinement-enabled engine on both
//! sides (the paper ran stock MUSCLE everywhere). The refinement term is
//! `O(N³L)`-ish, so the speedup grows quickly with N: the scaled default
//! (N=400) lands in the tens, and `SAD_PAPER_SCALE=1` (N=2000; the
//! sequential baseline then needs ~an hour of real time) reaches the
//! paper's hundred-fold regime.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, genome_workload, paper_scale, sad_on_cluster, table, PAPER_PROCS};
use sad_core::{sequential::sequential_seconds, SadConfig};
use vcluster::CostModel;

fn experiment() {
    let n = if paper_scale() { 2000 } else { 400 };
    banner("Fig. 6", &format!("genome workload, N={n} (paper: 2000), avg len ≈ 316"));
    let seqs = genome_workload(n, 0xF166);
    // The paper runs stock MUSCLE (stages 1-3, refinement included) both as
    // the baseline and inside each processor.
    let cfg = SadConfig::default().with_engine(align::EngineChoice::MuscleStandard);
    let cost = CostModel::beowulf_2008();

    let (_baseline_msa, t_seq) = sequential_seconds(&seqs, &cfg, &cost);
    println!("\nsequential MUSCLE-like engine on one node: {t_seq:.2} virtual s");

    let mut rows = Vec::new();
    let mut t16 = f64::NAN;
    for &p in &PAPER_PROCS {
        let run = sad_on_cluster(p, &seqs, &cfg);
        let makespan = run.makespan().expect("distributed runs have a makespan");
        if p == 16 {
            t16 = makespan;
        }
        rows.push(vec![
            p.to_string(),
            format!("{makespan:.2}"),
            format!("{:.2}", t_seq / makespan),
            format!("{:.2}", run.load_imbalance()),
        ]);
    }
    table(&["p", "time_s", "speedup_vs_sequential", "load_imbalance"], &rows);

    let speedup16 = t_seq / t16;
    println!(
        "\nspeedup at p=16: {speedup16:.1}x (paper: 142x; the effect is O(N³) \
         refinement vs per-bucket refinement, so it grows with N)"
    );
    println!(
        "paper check — super-linear speedup at p=16: {}",
        if speedup16 > 16.0 {
            "REPRODUCED (super-linear)"
        } else if speedup16 > 8.0 {
            "PARTIAL at scaled N (set SAD_PAPER_SCALE=1 for the paper's regime)"
        } else {
            "NOT reproduced"
        }
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let seqs = genome_workload(96, 0xF1666);
    let cfg = SadConfig::default();
    c.bench_function("fig6/sad_genome_n96_p8", |b| {
        b.iter(|| sad_on_cluster(8, std::hint::black_box(&seqs), &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
