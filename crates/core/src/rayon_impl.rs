//! Shared-memory Sample-Align-D using rayon.
//!
//! Same pipeline as [`crate::distributed`], but buckets are aligned by a
//! rayon thread pool instead of cluster ranks — the backend a downstream
//! user on one big multicore machine would pick. Results are deterministic
//! (bucketing is identical; only scheduling differs). Phases are recorded
//! through the shared [`PipelineCtx`], so the typed phase sequence matches
//! the message-passing backend event for event.

use crate::ancestor::{
    anchor_to_ancestor, anchor_to_ancestor_seeded, glue_anchored, glue_block_diagonal,
};
use crate::config::SadConfig;
use crate::error::SadError;
use crate::pipeline::{Phase, PipelineCtx};
use crate::report::{BackendExtras, PhaseStat, RunReport};
use align::anchor::AnchorSpec;
use align::consensus::consensus_sequence;
use bioseq::kmer::{self, KmerProfile};
use bioseq::{Msa, Sequence, Work};
use rayon::prelude::*;
use std::time::Instant;

fn profile_of(seq: &Sequence, cfg: &SadConfig) -> KmerProfile {
    KmerProfile::build(seq, cfg.kmer_k, cfg.alphabet)
        .unwrap_or_else(|| KmerProfile::build(seq, 1, cfg.alphabet).expect("k=1 always works"))
}

/// The shared-memory pipeline with `p` logical buckets on the rayon pool.
/// Input validation happens in [`crate::Aligner::run`].
pub(crate) fn rayon_pipeline(
    seqs: &[Sequence],
    p: usize,
    cfg: &SadConfig,
    ctx: &PipelineCtx,
) -> Result<RunReport, SadError> {
    debug_assert!(!seqs.is_empty(), "Aligner::run rejects empty input");
    debug_assert!(p >= 1, "Aligner::run rejects zero threads");
    let n = seqs.len();
    let finish =
        |msa: Msa, phases: Vec<PhaseStat>, work: Work, bucket_sizes: Vec<usize>, depth: usize| {
            RunReport {
                msa,
                work,
                phases,
                bucket_sizes,
                ranks: p,
                samples_per_rank: cfg.samples_for(p),
                decomposition_depth: depth,
                kernel: cfg.dp_kernel.label(),
                vertical: None,
                trim: None,
                extras: BackendExtras::Rayon { threads: p },
            }
        };

    // Step 1: emulate the per-rank ranking: split into p blocks and rank
    // each block locally, in parallel.
    let chunk = n.div_ceil(p);
    let k = cfg.samples_for(p);
    let block_ranks = ctx.phase(Phase::LocalKmerRank, || {
        let blocks: Vec<(Vec<usize>, Vec<f64>, Work)> = (0..p)
            .into_par_iter()
            .map(|b| {
                let lo = (b * chunk).min(n);
                let hi = ((b + 1) * chunk).min(n);
                let mut w = Work::ZERO;
                if lo >= hi {
                    return (Vec::new(), Vec::new(), w);
                }
                let idx: Vec<usize> = (lo..hi).collect();
                let profs: Vec<KmerProfile> =
                    idx.iter().map(|&i| profile_of(&seqs[i], cfg)).collect();
                w.seq_bytes += idx.iter().map(|&i| seqs[i].len() as u64).sum::<u64>();
                let ranks: Vec<f64> = profs
                    .iter()
                    .map(|pr| kmer::kmer_rank(pr, &profs, cfg.rank_transform, &mut w))
                    .collect();
                (idx, ranks, w)
            })
            .collect();
        let rank_w = blocks.iter().map(|(_, _, w)| *w).sum();
        (blocks, rank_w)
    })?;

    // Step 2: sort each block by its local rank (the distributed step 2).
    // The locally sorted order also decides how rank ties break during
    // redistribution, so it must match the cluster backend.
    let sorted_blocks = ctx.phase(Phase::LocalSort, || {
        let mut sort_w = Work::ZERO;
        let sorted: Vec<Vec<usize>> = block_ranks
            .iter()
            .map(|(idx, ranks, _)| {
                let mut order: Vec<usize> = (0..idx.len()).collect();
                order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]));
                // Same n log n sort accounting as the distributed step 2.
                sort_w += psrs::sort_work(idx.len());
                order.into_iter().map(|o| idx[o]).collect()
            })
            .collect();
        (sorted, sort_w)
    })?;

    // Steps 3–4: pick regular samples per block and pool them (shared
    // memory: just indices). The global order of entry into redistribution
    // is blocks in rank order, each block in its locally sorted order —
    // exactly the distributed protocol.
    let (entry_order, sample_profiles) = ctx.phase(Phase::SampleExchange, || {
        let mut entry_order: Vec<usize> = Vec::with_capacity(n);
        let mut sample_indices: Vec<usize> = Vec::new();
        for sorted_idx in &sorted_blocks {
            let m = sorted_idx.len();
            let kk = k.min(m);
            sample_indices
                .extend((0..kk).map(|s| sorted_idx[(((s + 1) * m) / (kk + 1)).min(m - 1)]));
            entry_order.extend(sorted_idx.iter().copied());
        }
        let profs: Vec<KmerProfile> =
            sample_indices.iter().map(|&i| profile_of(&seqs[i], cfg)).collect();
        ((entry_order, profs), Work::ZERO)
    })?;

    // Step 5: globalized ranks, in parallel over the entry order.
    let keyed = ctx.phase(Phase::GlobalizedRank, || {
        let ranked: Vec<(usize, f64, Work)> = entry_order
            .into_par_iter()
            .map(|i| {
                let mut w = Work::ZERO;
                let pr = profile_of(&seqs[i], cfg);
                let r = kmer::kmer_rank(&pr, &sample_profiles, cfg.rank_transform, &mut w);
                (i, r, w)
            })
            .collect();
        let mut keyed: Vec<(usize, f64)> = Vec::with_capacity(n);
        let mut grank_w = Work::ZERO;
        for (i, r, w) in ranked {
            keyed.push((i, r));
            grank_w += w;
        }
        (keyed, grank_w)
    })?;

    // Step 6: sample-partition into p buckets by rank.
    let buckets_idx = ctx.phase(Phase::Redistribute, || {
        psrs::shared::sample_partition_by_with_work(keyed, p, |&(_, r)| r)
    })?;

    // Step 7 (hierarchical mode only): recursively re-sample and
    // re-partition any bucket over the cap, so no single engine run ever
    // centralises an oversized bucket. Leaves replace their first-pass
    // bucket in order, so concatenation still yields the global rank
    // order.
    let (buckets_idx, depth) = match cfg.max_bucket {
        Some(cap) => ctx.phase(Phase::SubPartition, || {
            let mut splitter = BucketSplitter {
                cap,
                ctx,
                root: 0,
                out: Vec::with_capacity(buckets_idx.len()),
                deepest: 0,
                work: Work::ZERO,
            };
            for (b, bucket) in buckets_idx.into_iter().enumerate() {
                splitter.root = b;
                splitter.split(bucket, 1);
            }
            ((splitter.out, splitter.deepest), splitter.work)
        })?,
        None => (buckets_idx, 0),
    };
    let bucket_sizes: Vec<usize> = buckets_idx.iter().map(Vec::len).collect();
    let buckets: Vec<Vec<Sequence>> =
        buckets_idx.iter().map(|b| b.iter().map(|&(i, _)| seqs[i].clone()).collect()).collect();

    // Step 8: align buckets in parallel.
    let local_msas = ctx.phase(Phase::LocalAlign, || {
        let indexed: Vec<(usize, Vec<Sequence>)> = buckets.into_iter().enumerate().collect();
        let aligned: Vec<Option<(Msa, Work)>> = indexed
            .into_par_iter()
            .map(|(b, bucket)| {
                if bucket.is_empty() {
                    None
                } else {
                    let t0 = Instant::now();
                    let out = cfg
                        .engine
                        .build_with(cfg.band_policy, cfg.dp_kernel)
                        .align_with_work(&bucket);
                    ctx.bucket_aligned(b, out.0.num_rows(), t0.elapsed().as_secs_f64());
                    Some(out)
                }
            })
            .collect();
        let mut local_msas: Vec<Msa> = Vec::new();
        let mut align_w = Work::ZERO;
        for entry in aligned.into_iter().flatten() {
            local_msas.push(entry.0);
            align_w += entry.1;
        }
        (local_msas, align_w)
    })?;
    assert!(!local_msas.is_empty());

    // A lone bucket IS the global alignment (p == 1 without a cap, or a
    // degenerate partition); with a cap even p == 1 can decompose into
    // many leaves, so the test is on the bucket count, not on p.
    if local_msas.len() == 1 {
        let msa = local_msas.into_iter().next().expect("one bucket");
        let (phases, work) = ctx.drain();
        return Ok(finish(msa, phases, work, bucket_sizes, depth));
    }
    if !cfg.fine_tune {
        let msa = ctx.phase(Phase::Glue, || {
            let mut glue_w = Work::ZERO;
            let msa = glue_block_diagonal(&local_msas, &mut glue_w);
            (msa, glue_w)
        })?;
        let (phases, work) = ctx.drain();
        return Ok(finish(msa, phases, work, bucket_sizes, depth));
    }

    // Step 9: ancestors per bucket.
    let ancestors = ctx.phase(Phase::LocalAncestor, || {
        let mut anc_w = Work::ZERO;
        let ancestors: Vec<Sequence> = local_msas
            .iter()
            .enumerate()
            .map(|(i, msa)| consensus_sequence(msa, format!("local-anc-{i}"), &mut anc_w))
            .collect();
        (ancestors, anc_w)
    })?;

    // Step 10: the global ancestor.
    let ga = ctx.phase(Phase::GlobalAncestor, || {
        let mut ga_w = Work::ZERO;
        let ga = if ancestors.len() == 1 {
            ancestors.into_iter().next().expect("one ancestor")
        } else {
            let (anc_msa, w) =
                cfg.engine.build_with(cfg.band_policy, cfg.dp_kernel).align_with_work(&ancestors);
            ga_w += w;
            consensus_sequence(&anc_msa, "global-ancestor", &mut ga_w)
        };
        (ga, ga_w)
    })?;

    // Step 11: fine-tune each bucket against the global ancestor, in
    // parallel. On the capped (reads) path the bucket MSAs are gappy
    // fragment stacks, where the whole-width profile DP wastes most of its
    // bill on conserved stretches — seed it with the decomp anchor scan
    // so shared consensus k-mers are pinned and only the gaps in between
    // are aligned. The uncapped path (and the distributed backend, which
    // rejects `max_bucket`) keeps the unseeded DP, preserving parity.
    let seeded = cfg.max_bucket.is_some() && cfg.anchored_merge;
    let anchored = ctx.phase(Phase::FineTune, || {
        let blocks: Vec<(crate::messages::AnchoredBlockMsg, Work)> = local_msas
            .par_iter()
            .map(|msa| {
                let mut w = Work::ZERO;
                let b = if seeded {
                    anchor_to_ancestor_seeded(
                        msa,
                        &ga,
                        &AnchorSpec::default(),
                        &cfg.matrix,
                        cfg.gaps,
                        cfg.band_policy,
                        cfg.dp_kernel,
                        &mut w,
                    )
                } else {
                    anchor_to_ancestor(
                        msa,
                        &ga,
                        &cfg.matrix,
                        cfg.gaps,
                        cfg.band_policy,
                        cfg.dp_kernel,
                        &mut w,
                    )
                };
                (b, w)
            })
            .collect();
        let mut anchored = Vec::with_capacity(blocks.len());
        let mut tune_w = Work::ZERO;
        for (b, w) in blocks {
            anchored.push(b);
            tune_w += w;
        }
        (anchored, tune_w)
    })?;

    // Step 12: glue.
    let msa = ctx.phase(Phase::Glue, || {
        let mut glue_w = Work::ZERO;
        let msa = glue_anchored(ga.len(), &anchored, &mut glue_w);
        (msa, glue_w)
    })?;
    let (phases, work) = ctx.drain();
    Ok(finish(msa, phases, work, bucket_sizes, depth))
}

/// Recursive bucket decomposition state for [`Phase::SubPartition`]: the
/// cap, the first-pass bucket being split (`root`), and the accumulated
/// leaves, deepest split and partition work.
struct BucketSplitter<'a> {
    cap: usize,
    ctx: &'a PipelineCtx,
    /// First-pass (post-redistribution) bucket currently being split.
    root: usize,
    /// Finished leaves, in rank order.
    out: Vec<Vec<(usize, f64)>>,
    /// Deepest split recorded across all roots.
    deepest: usize,
    work: Work,
}

impl BucketSplitter<'_> {
    /// Recursively split `bucket` until every leaf holds at most `cap`
    /// sequences, appending the leaves (in rank order) to `out`.
    ///
    /// Each over-cap bucket is re-partitioned by the same
    /// regular-sampling partition the first pass used, over its own
    /// members — the hierarchical decomposition of the Pyro-Align
    /// follow-up. Identical rank keys can defeat sampling (every member
    /// lands in one sub-bucket); that no-progress case falls back to
    /// chunking the (already sorted) bucket into contiguous runs of at
    /// most `cap`, which always terminates.
    fn split(&mut self, bucket: Vec<(usize, f64)>, depth: usize) {
        if bucket.len() <= self.cap {
            self.out.push(bucket);
            return;
        }
        self.deepest = self.deepest.max(depth);
        let size = bucket.len();
        let parts = size.div_ceil(self.cap);
        self.ctx.bucket_split(self.root, depth, size, parts);
        let (subs, sw) = psrs::shared::sample_partition_by_with_work(bucket, parts, |&(_, r)| r);
        self.work += sw;
        if subs.iter().map(Vec::len).max().unwrap_or(0) == size {
            // No progress: all keys collapsed onto one pivot side. The
            // bucket comes back sorted, so contiguous chunks of ≤ cap
            // preserve rank order exactly.
            let whole: Vec<(usize, f64)> = subs.into_iter().flatten().collect();
            for chunk in whole.chunks(size.div_ceil(parts)) {
                debug_assert!(chunk.len() <= self.cap);
                self.out.push(chunk.to_vec());
            }
            return;
        }
        for sub in subs {
            if !sub.is_empty() {
                self.split(sub, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aligner, Backend};
    use rosegen::{Family, FamilyConfig};
    use std::collections::HashMap;
    use vcluster::{CostModel, VirtualCluster};

    fn family(n: usize, seed: u64) -> Vec<Sequence> {
        Family::generate(&FamilyConfig {
            n_seqs: n,
            avg_len: 60,
            relatedness: 700.0,
            seed,
            ..Default::default()
        })
        .seqs
    }

    fn run(seqs: &[Sequence], p: usize, cfg: &SadConfig) -> RunReport {
        Aligner::new(cfg.clone()).backend(Backend::Rayon { threads: p }).run(seqs).unwrap()
    }

    fn check_complete(result: &Msa, input: &[Sequence]) {
        result.validate().unwrap();
        assert_eq!(result.num_rows(), input.len());
        let by_id: HashMap<&str, &Sequence> = input.iter().map(|s| (s.id.as_str(), s)).collect();
        for r in 0..result.num_rows() {
            let want = by_id[result.ids()[r].as_str()];
            assert_eq!(&result.ungapped(r), want);
        }
    }

    #[test]
    fn end_to_end() {
        let seqs = family(24, 1);
        let report = run(&seqs, 4, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 24);
        assert!(!report.work.is_zero());
    }

    #[test]
    fn deterministic_despite_parallelism() {
        let seqs = family(20, 2);
        let a = run(&seqs, 4, &SadConfig::default());
        let b = run(&seqs, 4, &SadConfig::default());
        assert_eq!(a.msa, b.msa);
        assert_eq!(a.work, b.work);
        assert_eq!(a.phase_sequence(), b.phase_sequence());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.work, pb.work, "{}", pa.name());
        }
    }

    #[test]
    fn p1_is_single_bucket() {
        let seqs = family(8, 3);
        let report = run(&seqs, 1, &SadConfig::default());
        check_complete(&report.msa, &seqs);
        assert_eq!(report.bucket_sizes, vec![8]);
    }

    #[test]
    fn agrees_with_distributed_on_bucketing() {
        // Same sampling rules ⇒ same bucket sizes as the message-passing
        // backend.
        let seqs = family(32, 4);
        let cfg = SadConfig::default();
        let ray = run(&seqs, 4, &cfg);
        let cluster = VirtualCluster::new(4, CostModel::beowulf_2008());
        let dist = Aligner::new(cfg).backend(Backend::Distributed(cluster)).run(&seqs).unwrap();
        assert_eq!(ray.bucket_sizes, dist.bucket_sizes);
        // And the same final alignment (pipelines are step-identical).
        assert_eq!(ray.msa, dist.msa);
        // Step-identical down to the typed phase sequence.
        assert_eq!(ray.phase_sequence(), dist.phase_sequence());
    }

    #[test]
    fn fine_tune_off_is_block_diagonal() {
        let seqs = family(16, 5);
        let cfg = SadConfig::default().with_fine_tune(false);
        let report = run(&seqs, 4, &cfg);
        check_complete(&report.msa, &seqs);
        assert!(report.phase_sequence().ends_with(&[Phase::LocalAlign, Phase::Glue]));
        assert!(!report.phase_sequence().contains(&Phase::FineTune));
    }

    #[test]
    fn work_is_attributed_to_phases() {
        let seqs = family(20, 6);
        let report = run(&seqs, 4, &SadConfig::default());
        assert_eq!(report.work, report.phases.iter().map(|p| p.work).sum::<Work>());
        let of = |phase: Phase| report.phase(phase).map(|p| p.work).unwrap_or(Work::ZERO);
        assert!(of(Phase::LocalKmerRank).kmer_ops > 0);
        assert!(of(Phase::LocalSort).sort_ops > 0);
        assert!(of(Phase::Redistribute).sort_ops > 0);
        assert!(of(Phase::LocalAlign).dp_cells > 0);
        // Shared-memory runs carry real wall time but no virtual clock.
        assert!(report.phases.iter().all(|p| p.seconds.is_some()));
        assert!(report.phases.iter().all(|p| p.virtual_seconds.is_none()));
    }

    #[test]
    fn small_inputs_align() {
        let seqs3 = family(3, 7);
        let report = run(&seqs3, 8, &SadConfig::default());
        check_complete(&report.msa, &seqs3);
    }

    #[test]
    fn max_bucket_caps_every_leaf() {
        let seqs = family(60, 8);
        let cfg = SadConfig::default().with_max_bucket(Some(8));
        let report = run(&seqs, 2, &cfg);
        check_complete(&report.msa, &seqs);
        assert!(report.bucket_sizes.iter().all(|&b| b <= 8), "{:?}", report.bucket_sizes);
        assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 60);
        assert!(report.decomposition_depth >= 1, "60 seqs over 2 buckets must split");
        assert!(report.phase_sequence().contains(&Phase::SubPartition));
        // The sub-partition phase slots between redistribution and the
        // engine runs.
        let seq = report.phase_sequence();
        let at = |p| seq.iter().position(|&x| x == p).unwrap();
        assert!(at(Phase::Redistribute) < at(Phase::SubPartition));
        assert!(at(Phase::SubPartition) < at(Phase::LocalAlign));
    }

    #[test]
    fn uncapped_runs_have_no_sub_partition_phase() {
        let seqs = family(24, 9);
        let report = run(&seqs, 4, &SadConfig::default());
        assert!(!report.phase_sequence().contains(&Phase::SubPartition));
        assert_eq!(report.decomposition_depth, 0);
    }

    #[test]
    fn loose_cap_matches_flat_partition() {
        // A cap nothing exceeds records the phase but splits nothing: the
        // buckets — and the alignment — match the uncapped run.
        let seqs = family(24, 10);
        let flat = run(&seqs, 4, &SadConfig::default());
        let capped = run(&seqs, 4, &SadConfig::default().with_max_bucket(Some(1000)));
        assert_eq!(capped.bucket_sizes, flat.bucket_sizes);
        assert_eq!(capped.msa, flat.msa);
        assert_eq!(capped.decomposition_depth, 0);
        assert!(capped.phase_sequence().contains(&Phase::SubPartition));
    }

    #[test]
    fn capped_p1_decomposes_instead_of_centralising() {
        let seqs = family(40, 11);
        let cfg = SadConfig::default().with_max_bucket(Some(10));
        let report = run(&seqs, 1, &cfg);
        check_complete(&report.msa, &seqs);
        assert!(report.bucket_sizes.len() >= 4, "{:?}", report.bucket_sizes);
        assert!(report.bucket_sizes.iter().all(|&b| b <= 10));
    }

    #[test]
    fn capped_runs_are_deterministic() {
        let seqs = family(48, 12);
        let cfg = SadConfig::default().with_max_bucket(Some(6));
        let a = run(&seqs, 3, &cfg);
        let b = run(&seqs, 3, &cfg);
        assert_eq!(a.msa, b.msa);
        assert_eq!(a.bucket_sizes, b.bucket_sizes);
        assert_eq!(a.decomposition_depth, b.decomposition_depth);
    }

    #[test]
    fn identical_rank_keys_still_terminate() {
        // Identical sequences share one rank key; sampling cannot split
        // them, so the chunking fallback must cap the leaves.
        let seqs: Vec<Sequence> = (0..30)
            .map(|i| Sequence::from_codes(format!("dup{i}"), vec![1, 2, 3, 4, 5, 6, 7, 8]))
            .collect();
        let cfg = SadConfig::default().with_kmer_k(2).with_max_bucket(Some(4));
        let report = run(&seqs, 2, &cfg);
        check_complete(&report.msa, &seqs);
        assert!(report.bucket_sizes.iter().all(|&b| b <= 4), "{:?}", report.bucket_sizes);
        assert_eq!(report.bucket_sizes.iter().sum::<usize>(), 30);
    }
}
