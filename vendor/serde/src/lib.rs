//! Offline stand-in for `serde`.
//!
//! No serde *format* crate (serde_json, bincode, …) is in the dependency
//! set — the workspace only uses `Serialize`/`Deserialize` as derive
//! attributes and trait bounds on config/trace types so they stay
//! serialisation-ready. This stand-in therefore models them as marker
//! traits with blanket impls, and the companion `serde_derive` emits
//! nothing. Swapping back to the registry crates is a manifest-only change;
//! the derives and bounds at call sites are already the real serde shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serialisable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserialisable under real serde.
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(super::Serialize, super::Deserialize)]
    struct WithGenerics<T> {
        _x: Vec<T>,
    }

    fn assert_serialize<T: super::Serialize>() {}

    #[test]
    fn derives_and_bounds_compile() {
        assert_serialize::<Plain>();
        assert_serialize::<WithGenerics<String>>();
        assert_serialize::<f64>();
    }
}
