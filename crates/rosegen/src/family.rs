//! Family generation: evolve a root sequence down a random phylogeny while
//! tracking the true alignment through a global column registry.
//!
//! Every alignment column that ever exists gets a stable id. Substitutions
//! rewrite a column's residue in one lineage; deletions drop `(column,
//! residue)` entries from one lineage; insertions mint fresh column ids and
//! splice them into the global column order. The true multiple alignment
//! of the leaves falls out by scattering each leaf's `(column, residue)`
//! pairs into the final column order.

use crate::mutation::MutationModel;
use crate::rng::{geometric, normal, poisson};
use crate::treegen::random_ultrametric_tree;
use bioseq::alphabet::GAP_CODE;
use bioseq::{Msa, Sequence};
use phylo::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters of a synthetic family (rose-style).
#[derive(Debug, Clone)]
pub struct FamilyConfig {
    /// Number of leaf sequences.
    pub n_seqs: usize,
    /// Mean root sequence length.
    pub avg_len: usize,
    /// Standard deviation of the root length.
    pub len_sd: f64,
    /// Divergence knob — despite the name, **larger values mean more
    /// divergent families**, not more related ones.
    ///
    /// The knob keeps rose's convention: the expected pairwise
    /// substitutions per site are `≈ relatedness / 500`, so `100.0`
    /// yields a tight family, `800.0` reproduces the paper's "not very
    /// close" setting, and `1500.0` barely-alignable sequences.
    pub relatedness: f64,
    /// Expected indel events per site per unit branch length.
    pub indel_rate: f64,
    /// Geometric length parameter for indels (mean length `1/p`).
    pub indel_ext_p: f64,
    /// RNG seed (families are fully deterministic given their config).
    pub seed: u64,
    /// Identifier prefix: sequences are named `<prefix><index>`.
    pub id_prefix: String,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig {
            n_seqs: 20,
            avg_len: 300,
            len_sd: 15.0,
            relatedness: 800.0,
            indel_rate: 0.02,
            indel_ext_p: 0.45,
            seed: 0,
            id_prefix: "seq".to_string(),
        }
    }
}

/// A generated family: the unaligned leaf sequences, their true reference
/// alignment, and the phylogeny that produced them.
#[derive(Debug, Clone)]
pub struct Family {
    /// Leaf sequences, index-aligned with the tree's leaves and the
    /// reference alignment's rows.
    pub seqs: Vec<Sequence>,
    /// The true alignment implied by the generative process.
    pub reference: Msa,
    /// The generating phylogeny.
    pub tree: Tree,
}

/// Minimum residues a lineage may shrink to (deletions that would go below
/// this are skipped so sequences never vanish).
const MIN_LEN: usize = 8;

impl Family {
    /// Generate a family.
    ///
    /// # Panics
    /// Panics if `n_seqs == 0` or `avg_len == 0`.
    pub fn generate(cfg: &FamilyConfig) -> Family {
        assert!(cfg.n_seqs >= 1, "need at least one sequence");
        assert!(cfg.avg_len >= MIN_LEN, "avg_len too small");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = MutationModel::blosum62();
        // `relatedness` scales divergence (larger = further apart); see
        // the field's rustdoc for the rose convention it preserves.
        let subs_per_site = cfg.relatedness / 500.0;
        let tree = random_ultrametric_tree(&mut rng, cfg.n_seqs, subs_per_site / 2.0);

        // Root sequence.
        let root_len =
            normal(&mut rng, cfg.avg_len as f64, cfg.len_sd).round().max(MIN_LEN as f64) as usize;
        let mut next_col: u64 = 0;
        let mut order: Vec<u64> = Vec::with_capacity(root_len * 2);
        let mut root_seq: Vec<(u64, u8)> = Vec::with_capacity(root_len);
        for _ in 0..root_len {
            let id = next_col;
            next_col += 1;
            order.push(id);
            root_seq.push((id, model.sample_background(&mut rng)));
        }

        // Pre-order traversal (parents before children).
        let mut node_seqs: Vec<Option<Vec<(u64, u8)>>> = vec![None; tree.n_nodes()];
        node_seqs[tree.root()] = Some(root_seq);
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if let Some((a, b)) = tree.node(id).children {
                for child in [a, b] {
                    let evolved = evolve_edge(
                        node_seqs[id].as_ref().expect("parent evolved"),
                        tree.node(child).branch_len,
                        cfg,
                        &model,
                        &mut rng,
                        &mut next_col,
                        &mut order,
                    );
                    node_seqs[child] = Some(evolved);
                    stack.push(child);
                }
            }
        }

        // Collect leaves.
        let width = |i: usize| format!("{:01$}", i, cfg.n_seqs.to_string().len().max(4));
        let mut seqs = Vec::with_capacity(cfg.n_seqs);
        let mut leaf_entries: Vec<&Vec<(u64, u8)>> = Vec::with_capacity(cfg.n_seqs);
        for leaf in 0..cfg.n_seqs {
            let node = tree.leaf_node(leaf).expect("leaf exists");
            let entries = node_seqs[node].as_ref().expect("leaf evolved");
            let codes: Vec<u8> = entries.iter().map(|&(_, r)| r).collect();
            seqs.push(Sequence::from_codes(format!("{}{}", cfg.id_prefix, width(leaf)), codes));
            leaf_entries.push(entries);
        }

        // Assemble the true alignment.
        let col_pos: HashMap<u64, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let total_cols = order.len();
        let mut rows: Vec<Vec<u8>> = Vec::with_capacity(cfg.n_seqs);
        for entries in leaf_entries {
            let mut row = vec![GAP_CODE; total_cols];
            for &(col, res) in entries {
                row[col_pos[&col]] = res;
            }
            rows.push(row);
        }
        let ids: Vec<String> = seqs.iter().map(|s| s.id.clone()).collect();
        let mut reference = Msa::from_rows(ids, rows);
        reference.drop_all_gap_columns();
        debug_assert!(reference.validate().is_ok());
        Family { seqs, reference, tree }
    }
}

/// Evolve a parent sequence across one edge: substitutions, then indels.
fn evolve_edge(
    parent: &[(u64, u8)],
    t: f64,
    cfg: &FamilyConfig,
    model: &MutationModel,
    rng: &mut StdRng,
    next_col: &mut u64,
    order: &mut Vec<u64>,
) -> Vec<(u64, u8)> {
    let mut seq: Vec<(u64, u8)> = parent.to_vec();
    // Substitutions, site-independent.
    for entry in seq.iter_mut() {
        entry.1 = model.evolve_site(rng, entry.1, t);
    }
    // Indel events: Poisson in (rate × branch × length); each event is an
    // insertion or deletion with equal probability.
    let events = poisson(rng, cfg.indel_rate * t * seq.len() as f64);
    for _ in 0..events {
        let len = geometric(rng, cfg.indel_ext_p);
        if rng.gen_bool(0.5) {
            // Deletion.
            if seq.len() <= MIN_LEN {
                continue;
            }
            let len = len.min(seq.len() - MIN_LEN);
            if len == 0 {
                continue;
            }
            let start = rng.gen_range(0..=seq.len() - len);
            seq.drain(start..start + len);
        } else {
            // Insertion of `len` fresh columns after position `pos`.
            let pos = rng.gen_range(0..=seq.len());
            // Global order anchor: before the column at `pos`, or at the
            // very end of the registry when appending.
            let global_at = if pos < seq.len() {
                order.iter().position(|&c| c == seq[pos].0).expect("live column is registered")
            } else {
                order.len()
            };
            let fresh: Vec<(u64, u8)> = (0..len)
                .map(|_| {
                    let id = *next_col;
                    *next_col += 1;
                    (id, model.sample_background(rng))
                })
                .collect();
            order.splice(global_at..global_at, fresh.iter().map(|&(c, _)| c));
            seq.splice(pos..pos, fresh);
        }
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, relatedness: f64, seed: u64) -> FamilyConfig {
        FamilyConfig {
            n_seqs: n,
            avg_len: 80,
            len_sd: 5.0,
            relatedness,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn reference_rows_ungap_to_sequences() {
        let fam = Family::generate(&cfg(12, 800.0, 1));
        assert_eq!(fam.seqs.len(), 12);
        fam.reference.validate().unwrap();
        for (i, s) in fam.seqs.iter().enumerate() {
            assert_eq!(fam.reference.ungapped(i), *s, "leaf {i}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Family::generate(&cfg(8, 600.0, 42));
        let b = Family::generate(&cfg(8, 600.0, 42));
        assert_eq!(a.seqs, b.seqs);
        assert_eq!(a.reference, b.reference);
        let c = Family::generate(&cfg(8, 600.0, 43));
        assert_ne!(a.seqs, c.seqs);
    }

    #[test]
    fn identity_decreases_with_relatedness() {
        let close = Family::generate(&cfg(10, 100.0, 7));
        let far = Family::generate(&cfg(10, 1500.0, 7));
        let id_close = close.reference.average_identity();
        let id_far = far.reference.average_identity();
        assert!(id_close > id_far + 0.1, "close {id_close} vs far {id_far}");
        assert!(id_close > 0.7, "close families should be similar: {id_close}");
    }

    #[test]
    fn lengths_cluster_around_avg() {
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 30,
            avg_len: 300,
            len_sd: 10.0,
            relatedness: 400.0,
            seed: 3,
            ..Default::default()
        });
        let mean = fam.seqs.iter().map(|s| s.len() as f64).sum::<f64>() / fam.seqs.len() as f64;
        assert!((mean - 300.0).abs() < 60.0, "mean length {mean}");
        assert!(fam.seqs.iter().all(|s| s.len() >= MIN_LEN));
    }

    #[test]
    fn single_sequence_family() {
        let fam = Family::generate(&cfg(1, 800.0, 5));
        assert_eq!(fam.seqs.len(), 1);
        assert_eq!(fam.reference.num_rows(), 1);
        assert_eq!(fam.reference.ungapped(0), fam.seqs[0]);
    }

    #[test]
    fn ids_use_prefix() {
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 3,
            id_prefix: "fam7_".into(),
            avg_len: 50,
            ..Default::default()
        });
        assert!(fam.seqs[0].id.starts_with("fam7_"));
        // Unique ids.
        let set: std::collections::HashSet<&str> = fam.seqs.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn indels_create_gaps_in_reference() {
        let fam = Family::generate(&FamilyConfig {
            n_seqs: 12,
            avg_len: 120,
            relatedness: 900.0,
            indel_rate: 0.05,
            seed: 11,
            ..Default::default()
        });
        let has_gap = fam.reference.rows().iter().any(|r| r.contains(&GAP_CODE));
        assert!(has_gap, "a divergent family should contain gaps");
    }

    #[test]
    fn zero_relatedness_gives_identical_sequences() {
        let fam = Family::generate(&cfg(6, 0.0, 13));
        for s in &fam.seqs[1..] {
            assert_eq!(s.codes(), fam.seqs[0].codes());
        }
        assert!((fam.reference.average_identity() - 1.0).abs() < 1e-12);
    }
}
