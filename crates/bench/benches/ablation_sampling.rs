//! Ablation — how the sample size `k` (sequences contributed per
//! processor) affects load balance and runtime.
//!
//! The paper fixes `k = p − 1` following PSRS; this sweep shows why:
//! fewer samples mean worse pivots and bigger load imbalance, more samples
//! buy little balance for extra communication.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_bench::{banner, rose_workload, sad_on_cluster, scaled, table};
use sad_core::SadConfig;

fn experiment() {
    let n = scaled(4000);
    let p = 8;
    banner("Ablation: sampling", &format!("samples per rank k vs load balance, N={n}, p={p}"));
    let seqs = rose_workload(n, 0xAB1A1);
    let mut rows = Vec::new();
    for k in [1usize, 3, p - 1, 2 * p, 4 * p] {
        let cfg = SadConfig::default().with_samples_per_rank(Some(k));
        let run = sad_on_cluster(p, &seqs, &cfg);
        let max_bucket = *run.bucket_sizes.iter().max().unwrap();
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", run.load_imbalance()),
            max_bucket.to_string(),
            format!("{}", psrs::max_partition_bound(n, p)),
            format!("{:.2}", run.makespan().expect("distributed runs have a makespan")),
        ]);
    }
    table(&["k", "load_imbalance", "max_bucket", "2N/p_bound", "time_s"], &rows);
    let imb_kp: f64 = rows[2][1].parse().unwrap();
    println!("\npaper check — regular sampling with k=p−1 balances load (≤ 2N/p): {}", {
        let max_kp: usize = rows[2][2].parse().unwrap();
        let bound: usize = rows[2][3].parse().unwrap();
        if max_kp <= bound {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    });
    println!(
        "observation — k=p−1 imbalance {imb_kp:.2} stays within the 2x bound; \
         larger k buys little (communication grows, balance already capped)"
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let seqs = rose_workload(256, 0xAB1A2);
    c.bench_function("ablation_sampling/psrs_shared_n256_p8", |b| {
        b.iter(|| {
            let keyed: Vec<(usize, f64)> = seqs
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.len() as f64 + (i % 17) as f64))
                .collect();
            psrs::shared::sample_partition_by(std::hint::black_box(keyed), 8, |&(_, k)| k)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
