//! End-to-end FASTA pipeline: read unaligned FASTA, align with
//! Sample-Align-D, write gapped FASTA — the workflow a downstream user
//! would script.
//!
//! Run with: `cargo run --release --example fasta_pipeline [input.fasta [p]]`
//! (without arguments a demo input is generated in-memory).

use sample_align_d::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args.next();
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let seqs: Vec<Sequence> = match &input {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            fasta::parse(&text).unwrap_or_else(|e| panic!("bad FASTA in {path}: {e}"))
        }
        None => {
            eprintln!("(no input given — generating a 32-sequence demo family)");
            Family::generate(&FamilyConfig {
                n_seqs: 32,
                avg_len: 90,
                relatedness: 650.0,
                seed: 99,
                ..Default::default()
            })
            .seqs
        }
    };
    eprintln!("read {} sequences", seqs.len());

    // Degenerate or misconfigured input surfaces as a typed SadError
    // instead of a panic deep inside the pipeline.
    let cluster = VirtualCluster::new(p, CostModel::modern());
    let report = match Aligner::new(SadConfig::default())
        .backend(Backend::Distributed(cluster))
        .run(&seqs)
    {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "aligned on {p} virtual ranks in {:.4} virtual seconds ({} columns)",
        report.makespan().expect("distributed runs have a makespan"),
        report.msa.num_cols()
    );

    // Gapped FASTA to stdout.
    print!("{}", fasta::write_alignment(&report.msa));
}
